// Parallel-determinism tests: the partitioned, shard-merged fixpoint
// stage against the serial path.
//
// EvalContextOptions::num_threads > 1 splits every stage into (rule plan
// × delta slice) tasks over a base::ThreadPool; num_shards > 1
// hash-shards the IDB relations so both stage merges (task stagings into
// stage buffers, stage buffers into the state) run as shard-wise
// ParallelFors with no serial merge. The ordered shard-wise merge
// reproduces the serial execution order within every shard, so:
//
//   * for a fixed shard count, relations are bit-identical — row ids
//     included — across every thread count;
//   * across shard counts, the relations are equal as sets (sharding
//     changes only where a row lives), and stage counts, stage_sizes,
//     per-tuple stages (TupleStage) and every executor stat except the
//     fan-out bookkeeping (parallel_tasks) are bit-identical.
//
// These tests hold both invariants over {1,2,4,8} threads × {1,2,8}
// shards × {static, stealing, auto} stage schedulers on all four
// semantics, on the randomized programs of index_correctness_test.cc.
// The stealing scheduler (ThreadPool::ParallelForDynamic) may execute a
// stage's delta rows in any order and any partition, but folds the chunk
// outputs by their deterministic (plan, first row) key, so the same
// bit-identity must hold — including on adversarially skewed inputs
// where every IDB tuple hashes into one shard (HotShardSkew below). The
// auto scheduler picks one of the two machineries per stage from the
// estimated slice-work variance; whichever it picks, the same fold key
// applies, so its results must be bit-identical too (and the
// AutoSchedulerTest cases below pin which machinery it picks on a
// uniform and on a hub-skewed workload, via the decision counters).
//
// Data-race coverage: build with ThreadSanitizer and run this binary (and
// the relation/executor tests) —
//
//   cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
//     -DCMAKE_CXX_FLAGS=-fsanitize=thread \
//     -DCMAKE_EXE_LINKER_FLAGS=-fsanitize=thread
//   cmake --build build-tsan -j && \
//     ctest --test-dir build-tsan -R 'Parallel|Relation|Executor' \
//       --output-on-failure
//
// The CI workflow runs the same job (see .github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "src/base/rng.h"
#include "src/core/engine.h"
#include "src/eval/inflationary.h"
#include "src/eval/stratified.h"
#include "src/graphs/digraph.h"
#include "tests/test_util.h"

namespace inflog {
namespace {

const size_t kThreadCounts[] = {1, 2, 4, 8};
const size_t kShardCounts[] = {1, 2, 8};
const StageScheduler kSchedulers[] = {StageScheduler::kStatic,
                                      StageScheduler::kStealing,
                                      StageScheduler::kAuto};

/// A database of random facts over `num_symbols` constants for the EDB
/// relations A/2, B/2, C/2, D/2 and S/1 (mirrors index_correctness_test).
Database RandomFactDb(uint64_t seed, size_t num_symbols, size_t num_facts) {
  Database db;
  Rng rng(seed);
  auto sym = [&](uint64_t i) { return std::to_string(i); };
  for (size_t i = 0; i < num_symbols; ++i) db.AddUniverseSymbol(sym(i));
  const std::vector<std::string> rels = {"A", "B", "C", "D"};
  for (size_t f = 0; f < num_facts; ++f) {
    const std::string& rel = rels[rng.Uniform(rels.size())];
    INFLOG_CHECK(db.AddFactNamed(rel, {sym(rng.Uniform(num_symbols)),
                                       sym(rng.Uniform(num_symbols))})
                     .ok());
  }
  for (size_t i = 0; i < num_symbols; ++i) {
    if (rng.Bernoulli(0.4)) INFLOG_CHECK(db.AddFactNamed("S", {sym(i)}).ok());
  }
  for (const std::string& rel : rels) {
    INFLOG_CHECK(db.DeclareRelation(rel, 2).ok());
  }
  INFLOG_CHECK(db.DeclareRelation("S", 1).ok());
  return db;
}

/// Join-heavy rules with negation — single- and multi-column keys all
/// appear in the compiled plans, so the index-intersection path and the
/// slicing path are both exercised.
constexpr char kJoinProgram[] =
    "J(X,Z) :- A(X,Y), B(Y,Z).\n"
    "K(X,W) :- J(X,Z), C(Z,W), !D(X,W).\n"
    "L(X) :- K(X,X).\n"
    "M(X,Y) :- J(X,Y), J(Y,X), !L(X).\n";

/// Row-by-row equality: for a fixed shard count, every thread count must
/// reproduce the reference's per-shard insertion order, not just the same
/// set (stage bookkeeping reads off per-shard row ids). Row(i) linearizes
/// shards in shard-major order, so global row-for-row equality between
/// equal-shard-count states is exactly per-shard row identity.
void ExpectSameRows(const IdbState& reference, const IdbState& candidate) {
  ASSERT_EQ(reference.relations.size(), candidate.relations.size());
  for (size_t i = 0; i < reference.relations.size(); ++i) {
    const Relation& a = reference.relations[i];
    const Relation& b = candidate.relations[i];
    ASSERT_EQ(a.num_shards(), b.num_shards()) << "relation " << i;
    ASSERT_EQ(a.size(), b.size()) << "relation " << i;
    for (size_t r = 0; r < a.size(); ++r) {
      ASSERT_TRUE(TupleEq()(a.Row(r), b.Row(r)))
          << "relation " << i << " row " << r << " differs";
    }
  }
}

/// Set equality plus canonical order: the cross-shard-count invariant
/// (sharding moves rows between shards but cannot change the set).
void ExpectSameSets(const IdbState& reference, const IdbState& candidate) {
  ASSERT_EQ(reference.relations.size(), candidate.relations.size());
  for (size_t i = 0; i < reference.relations.size(); ++i) {
    EXPECT_EQ(reference.relations[i].SortedTuples(),
              candidate.relations[i].SortedTuples())
        << "relation " << i;
  }
}

/// Every counter except parallel_tasks (which records the fan-out itself,
/// so it necessarily varies with the thread/shard configuration) must be
/// identical: the partition decides where work runs, never what runs.
void ExpectSameStats(const EvalStats& reference, const EvalStats& candidate,
                     const std::string& config) {
  EXPECT_EQ(reference.stages, candidate.stages) << config;
  EXPECT_EQ(reference.derivations, candidate.derivations) << config;
  EXPECT_EQ(reference.new_tuples, candidate.new_tuples) << config;
  EXPECT_EQ(reference.rows_matched, candidate.rows_matched) << config;
  EXPECT_EQ(reference.index_lookups, candidate.index_lookups) << config;
  EXPECT_EQ(reference.intersections, candidate.intersections) << config;
  EXPECT_EQ(reference.enumerations, candidate.enumerations) << config;
}

std::string ConfigName(size_t threads, size_t shards,
                       StageScheduler scheduler = StageScheduler::kStatic) {
  return "threads=" + std::to_string(threads) +
         " shards=" + std::to_string(shards) + " scheduler=" +
         std::string(StageSchedulerName(scheduler));
}

class ParallelDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(ParallelDeterminism, InflationaryMatchesSerialBitForBit) {
  Database db = RandomFactDb(7000 + GetParam(), 14, 120);
  Program program = testing::MustProgram(kJoinProgram, db.shared_symbols());

  InflationaryOptions serial_opts;
  serial_opts.context.num_threads = 1;
  serial_opts.context.num_shards = 1;
  auto serial = EvalInflationary(program, db, serial_opts);
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(serial->stats.parallel_tasks, 0u);

  for (size_t shards : kShardCounts) {
    // Per-shard-count reference: the threads=1 run at this shard count.
    // Every thread count must then match it row for row.
    InflationaryOptions ref_opts;
    ref_opts.context.num_threads = 1;
    ref_opts.context.num_shards = shards;
    auto reference = EvalInflationary(program, db, ref_opts);
    ASSERT_TRUE(reference.ok());
    ExpectSameSets(serial->state, reference->state);

    for (size_t threads : kThreadCounts) {
      for (StageScheduler scheduler : kSchedulers) {
        const std::string config = ConfigName(threads, shards, scheduler);
        InflationaryOptions par_opts;
        par_opts.context.num_threads = threads;
        par_opts.context.num_shards = shards;
        par_opts.context.scheduler = scheduler;
        auto parallel = EvalInflationary(program, db, par_opts);
        ASSERT_TRUE(parallel.ok()) << config;

        ExpectSameRows(reference->state, parallel->state);
        ExpectSameSets(serial->state, parallel->state);
        EXPECT_EQ(serial->num_stages, parallel->num_stages) << config;
        EXPECT_EQ(serial->stage_sizes, parallel->stage_sizes) << config;
        ExpectSameStats(serial->stats, parallel->stats, config);
        if (threads > 1) {
          EXPECT_GT(parallel->stats.parallel_tasks, 0u) << config;
        } else {
          EXPECT_EQ(parallel->stats.parallel_tasks, 0u) << config;
          EXPECT_EQ(parallel->stats.slices, 0u) << config;
        }
        if (scheduler == StageScheduler::kStatic || threads == 1) {
          // Stealing only: chunks can move between workers.
          EXPECT_EQ(parallel->stats.steals, 0u) << config;
          EXPECT_EQ(parallel->stats.splits, 0u) << config;
        }

        // The stage at which each tuple entered — the semantics
        // Proposition 2 reads distances off — is configuration-invariant
        // too.
        for (size_t i = 0; i < serial->state.relations.size(); ++i) {
          for (const Tuple& t : serial->state.relations[i].SortedTuples()) {
            EXPECT_EQ(serial->TupleStage(i, t), parallel->TupleStage(i, t))
                << config << " relation " << i;
          }
        }
      }
    }
  }
}

TEST_P(ParallelDeterminism, NaiveDriverMatchesSerial) {
  // use_seminaive=false takes the full-plan (per-rule task) partition at
  // every stage instead of delta slicing.
  Database db = RandomFactDb(7100 + GetParam(), 12, 100);
  Program program = testing::MustProgram(kJoinProgram, db.shared_symbols());

  InflationaryOptions serial_opts;
  serial_opts.use_seminaive = false;
  serial_opts.context.num_threads = 1;
  auto serial = EvalInflationary(program, db, serial_opts);
  ASSERT_TRUE(serial.ok());

  for (size_t shards : kShardCounts) {
    for (size_t threads : kThreadCounts) {
      for (StageScheduler scheduler : kSchedulers) {
        const std::string config = ConfigName(threads, shards, scheduler);
        InflationaryOptions par_opts;
        par_opts.use_seminaive = false;
        par_opts.context.num_threads = threads;
        par_opts.context.num_shards = shards;
        par_opts.context.scheduler = scheduler;
        auto parallel = EvalInflationary(program, db, par_opts);
        ASSERT_TRUE(parallel.ok()) << config;
        ExpectSameSets(serial->state, parallel->state);
        EXPECT_EQ(serial->num_stages, parallel->num_stages) << config;
        EXPECT_EQ(serial->stage_sizes, parallel->stage_sizes) << config;
        EXPECT_EQ(serial->stats.derivations, parallel->stats.derivations)
            << config;
      }
    }
  }
}

TEST_P(ParallelDeterminism, TransitiveClosureManyStagesManySlices) {
  // Larger delta ranges so stages genuinely split into several slices —
  // and, at 2/8 shards, into shard-aligned slices with a shard-parallel
  // merge on every stage.
  Rng rng(8000 + GetParam());
  const size_t n = 48;
  const Digraph g = RandomDigraph(n, 3.0 / n, &rng);
  Database db;
  GraphToDatabase(g, "E", &db);
  Program program = testing::MustProgram(
      "T(X,Y) :- E(X,Y).\n"
      "T(X,Z) :- T(X,Y), E(Y,Z).\n",
      db.shared_symbols());

  InflationaryOptions serial_opts;
  serial_opts.context.num_threads = 1;
  auto serial = EvalInflationary(program, db, serial_opts);
  ASSERT_TRUE(serial.ok());

  for (size_t shards : kShardCounts) {
    for (size_t threads : kThreadCounts) {
      for (StageScheduler scheduler : kSchedulers) {
        const std::string config = ConfigName(threads, shards, scheduler);
        InflationaryOptions par_opts;
        par_opts.context.num_threads = threads;
        par_opts.context.num_shards = shards;
        par_opts.context.scheduler = scheduler;
        auto parallel = EvalInflationary(program, db, par_opts);
        ASSERT_TRUE(parallel.ok()) << config;
        ExpectSameSets(serial->state, parallel->state);
        EXPECT_EQ(serial->num_stages, parallel->num_stages) << config;
        EXPECT_EQ(serial->stage_sizes, parallel->stage_sizes) << config;
        ExpectSameStats(serial->stats, parallel->stats, config);
      }
    }
  }
}

/// Random facts for A/2 and S/1 as parser text, so engines (which own
/// their symbol table) can load them directly.
std::string RandomFactText(uint64_t seed, size_t num_symbols,
                           size_t num_facts) {
  Rng rng(seed);
  // Guarantee both EDB relations exist whatever the seed draws.
  std::string text = "S(0).\n";
  for (size_t f = 0; f < num_facts; ++f) {
    text += "A(" + std::to_string(rng.Uniform(num_symbols)) + "," +
            std::to_string(rng.Uniform(num_symbols)) + ").\n";
  }
  for (size_t i = 0; i < num_symbols; ++i) {
    if (rng.Bernoulli(0.4)) text += "S(" + std::to_string(i) + ").\n";
  }
  return text;
}

TEST_P(ParallelDeterminism, AllFourSemanticsThroughEngine) {
  // The unified entry point: every semantics must answer identically for
  // every (threads, shards) combination (well-founded and stable run the
  // grounded pipeline, where both knobs are inert by design — asserted
  // all the same).
  const std::string program_text =
      "R(X) :- S(X).\n"
      "R(Y) :- R(X), A(X,Y).\n"
      "U(X,Y) :- A(X,Y), !R(X).\n";
  const std::string fact_text = RandomFactText(7300 + GetParam(), 8, 24);
  for (SemanticsKind kind :
       {SemanticsKind::kInflationary, SemanticsKind::kStratified,
        SemanticsKind::kWellFounded, SemanticsKind::kStable}) {
    Engine engine;
    ASSERT_TRUE(engine.LoadProgramText(program_text).ok());
    ASSERT_TRUE(engine.LoadDatabaseText(fact_text).ok());

    EvalOptions serial_opts;
    serial_opts.num_threads = 1;
    serial_opts.num_shards = 1;
    auto serial = engine.Evaluate(kind, serial_opts);
    ASSERT_TRUE(serial.ok()) << SemanticsKindName(kind);

    for (size_t shards : kShardCounts) {
      for (size_t threads : kThreadCounts) {
        for (StageScheduler scheduler : kSchedulers) {
          const std::string config =
              std::string(SemanticsKindName(kind)) + " " +
              ConfigName(threads, shards, scheduler);
          EvalOptions par_opts;
          par_opts.num_threads = threads;
          par_opts.num_shards = shards;
          par_opts.scheduler = scheduler;
          auto parallel = engine.Evaluate(kind, par_opts);
          ASSERT_TRUE(parallel.ok()) << config;
          ExpectSameSets(serial->state(), parallel->state());
          if (serial->stats() != nullptr) {
            ExpectSameStats(*serial->stats(), *parallel->stats(), config);
          }
          if (kind == SemanticsKind::kStable) {
            const auto& sm = std::get<StableResult>(serial->detail);
            const auto& pm = std::get<StableResult>(parallel->detail);
            ASSERT_EQ(sm.models.size(), pm.models.size()) << config;
            for (size_t m = 0; m < sm.models.size(); ++m) {
              EXPECT_EQ(sm.models[m], pm.models[m])
                  << config << " stable model " << m;
            }
          }
        }
      }
    }
  }
}

TEST_P(ParallelDeterminism, StratifiedMatchesSerial) {
  Rng rng(9000 + GetParam());
  const size_t n = 16;
  const Digraph g = RandomDigraph(n, 2.0 / n, &rng);
  Database db;
  GraphToDatabase(g, "E", &db);
  ASSERT_TRUE(db.AddFactNamed("S", {"0"}).ok());
  Program program = testing::MustProgram(
      "R(X) :- S(X).\n"
      "R(Y) :- R(X), E(X,Y).\n"
      "U(X,Y) :- E(X,Y), !R(X).\n",
      db.shared_symbols());

  StratifiedOptions serial_opts;
  serial_opts.context.num_threads = 1;
  auto serial = EvalStratified(program, db, serial_opts);
  ASSERT_TRUE(serial.ok());

  for (size_t shards : kShardCounts) {
    for (size_t threads : kThreadCounts) {
      const std::string config = ConfigName(threads, shards);
      StratifiedOptions par_opts;
      par_opts.context.num_threads = threads;
      par_opts.context.num_shards = shards;
      auto parallel = EvalStratified(program, db, par_opts);
      ASSERT_TRUE(parallel.ok()) << config;
      ExpectSameSets(serial->state, parallel->state);
      EXPECT_EQ(serial->num_strata, parallel->num_strata) << config;
      ExpectSameStats(serial->stats, parallel->stats, config);
    }
  }
}

TEST_P(ParallelDeterminism, AutoShardsMatchExplicit) {
  // num_shards = 0 resolves to one shard per resolved thread; whatever it
  // picks, results must equal the unsharded serial run.
  Database db = RandomFactDb(7600 + GetParam(), 10, 80);
  Program program = testing::MustProgram(kJoinProgram, db.shared_symbols());

  InflationaryOptions serial_opts;
  serial_opts.context.num_threads = 1;
  auto serial = EvalInflationary(program, db, serial_opts);
  ASSERT_TRUE(serial.ok());

  InflationaryOptions auto_opts;
  auto_opts.context.num_threads = 4;
  auto_opts.context.num_shards = 0;  // auto
  auto parallel = EvalInflationary(program, db, auto_opts);
  ASSERT_TRUE(parallel.ok());
  ExpectSameSets(serial->state, parallel->state);
  EXPECT_EQ(serial->stage_sizes, parallel->stage_sizes);
  ExpectSameStats(serial->stats, parallel->stats, "auto shards");
  for (const Relation& rel : parallel->state.relations) {
    EXPECT_EQ(rel.num_shards(), 4u);
  }
}

/// A program with one unary IDB predicate R whose tuples the skew tests
/// force into a single hash shard.
constexpr char kSkewProgram[] =
    "R(X) :- S(X).\n"
    "R(Y) :- R(X), A(X,Y).\n"
    "U(X,Y) :- A(X,Y), !R(X).\n";

/// "Dom(c0). Dom(c1). ..." — pins the interning order of every candidate
/// symbol, so candidate Values (and therefore the shard of every unary
/// tuple over them) are identical in any engine that loads the same
/// program text plus a fact text starting with this block.
std::string DomBlock(size_t num_candidates) {
  std::string text;
  for (size_t i = 0; i < num_candidates; ++i) {
    text += "Dom(c" + std::to_string(i) + ").\n";
  }
  return text;
}

/// The candidate names whose unary tuple (value) hashes into shard 0 of a
/// 2^shard_bits-sharded relation, computed through a scout engine that
/// interns exactly like the test engines below.
std::vector<std::string> HotShardSymbols(size_t num_candidates,
                                         uint32_t shard_bits) {
  Engine scout;
  INFLOG_CHECK(scout.LoadProgramText(kSkewProgram).ok());
  INFLOG_CHECK(scout.LoadDatabaseText(DomBlock(num_candidates)).ok());
  std::vector<std::string> hot;
  for (size_t i = 0; i < num_candidates; ++i) {
    const std::string name = "c" + std::to_string(i);
    const Value v = scout.symbols()->Find(name);
    INFLOG_CHECK(v != kNoValue);
    const Tuple tuple{v};
    if (ShardOfHash(HashTuple(tuple), shard_bits) == 0) hot.push_back(name);
  }
  return hot;
}

TEST_P(ParallelDeterminism, HotShardSkewStealingMatchesSerial) {
  // Adversarial skew: every R tuple hashes into shard 0, so at 8 shards
  // the per-shard delta histogram is maximally skewed — the exact case
  // the stealing scheduler exists for. All four semantics must still
  // answer bit-identically to serial across the full sweep.
  const size_t kCandidates = 160;
  const std::vector<std::string> hot = HotShardSymbols(kCandidates, 3);
  ASSERT_GE(hot.size(), 8u);  // ~1/8 of candidates expected

  // A chain through every hot symbol (many stages) plus random extra
  // edges (wide deltas), seeded from the chain head.
  Rng rng(7900 + GetParam());
  std::string facts = DomBlock(kCandidates);
  facts += "S(" + hot[0] + ").\n";
  for (size_t i = 0; i + 1 < hot.size(); ++i) {
    facts += "A(" + hot[i] + "," + hot[i + 1] + ").\n";
  }
  for (size_t k = 0; k < 2 * hot.size(); ++k) {
    facts += "A(" + hot[rng.Uniform(hot.size())] + "," +
             hot[rng.Uniform(hot.size())] + ").\n";
  }

  for (SemanticsKind kind :
       {SemanticsKind::kInflationary, SemanticsKind::kStratified,
        SemanticsKind::kWellFounded, SemanticsKind::kStable}) {
    Engine engine;
    ASSERT_TRUE(engine.LoadProgramText(kSkewProgram).ok());
    ASSERT_TRUE(engine.LoadDatabaseText(facts).ok());

    EvalOptions serial_opts;
    serial_opts.num_threads = 1;
    serial_opts.num_shards = 1;
    auto serial = engine.Evaluate(kind, serial_opts);
    ASSERT_TRUE(serial.ok()) << SemanticsKindName(kind);

    if (kind == SemanticsKind::kInflationary) {
      // Verify the adversarial claim itself: at 8 shards, R lives
      // entirely in shard 0.
      EvalOptions sharded_opts;
      sharded_opts.num_threads = 1;
      sharded_opts.num_shards = 8;
      auto sharded = engine.Evaluate(kind, sharded_opts);
      ASSERT_TRUE(sharded.ok());
      auto r = engine.RelationOf(sharded->state(), "R");
      ASSERT_TRUE(r.ok());
      ASSERT_EQ((*r)->size(), hot.size());
      for (size_t s = 1; s < 8; ++s) {
        ASSERT_EQ((*r)->ShardSize(s), 0u) << "shard " << s;
      }
    }

    for (size_t shards : kShardCounts) {
      for (size_t threads : kThreadCounts) {
        const std::string config =
            std::string(SemanticsKindName(kind)) + " skew " +
            ConfigName(threads, shards, StageScheduler::kStealing);
        EvalOptions par_opts;
        par_opts.num_threads = threads;
        par_opts.num_shards = shards;
        par_opts.scheduler = StageScheduler::kStealing;
        // A tiny slice floor so even these small deltas genuinely fan
        // out and split (results are invariant to it).
        par_opts.min_slice_rows = 2;
        auto parallel = engine.Evaluate(kind, par_opts);
        ASSERT_TRUE(parallel.ok()) << config;
        ExpectSameSets(serial->state(), parallel->state());
        if (serial->stats() != nullptr) {
          ExpectSameStats(*serial->stats(), *parallel->stats(), config);
        }
      }
    }
  }
}

TEST(SerialPathTest, SerialRunsAllocateNoTaskScaffolding) {
  // num_threads == 1 dispatches straight to the serial stage body: no
  // tasks, no slices, no pool — whatever the scheduler and cutoff say —
  // and the stats are identical across every such configuration.
  Database db = RandomFactDb(4242, 12, 150);
  Program program = testing::MustProgram(kJoinProgram, db.shared_symbols());

  InflationaryOptions base;
  base.context.num_threads = 1;
  auto reference = EvalInflationary(program, db, base);
  ASSERT_TRUE(reference.ok());

  for (StageScheduler scheduler : kSchedulers) {
    for (size_t min_slice : {size_t{1}, size_t{16}, size_t{1 << 20}}) {
      const std::string config =
          "serial scheduler=" +
          std::string(StageSchedulerName(scheduler)) +
          " min_slice_rows=" + std::to_string(min_slice);
      InflationaryOptions opts;
      opts.context.num_threads = 1;
      opts.context.scheduler = scheduler;
      opts.context.min_slice_rows = min_slice;
      auto serial = EvalInflationary(program, db, opts);
      ASSERT_TRUE(serial.ok()) << config;
      EXPECT_EQ(serial->stats.parallel_tasks, 0u) << config;
      EXPECT_EQ(serial->stats.slices, 0u) << config;
      EXPECT_EQ(serial->stats.steals, 0u) << config;
      EXPECT_EQ(serial->stats.splits, 0u) << config;
      ExpectSameRows(reference->state, serial->state);
      EXPECT_EQ(reference->stage_sizes, serial->stage_sizes) << config;
      ExpectSameStats(reference->stats, serial->stats, config);
    }
  }
}

TEST(SerialPathTest, CutoffFallbackMatchesSerialExactly) {
  // With the cutoff above every stage's work, a multi-threaded run takes
  // the serial body per stage: identical results and zero fan-out stats.
  Database db = RandomFactDb(4243, 12, 150);
  Program program = testing::MustProgram(kJoinProgram, db.shared_symbols());

  InflationaryOptions base;
  base.context.num_threads = 1;
  auto reference = EvalInflationary(program, db, base);
  ASSERT_TRUE(reference.ok());

  for (StageScheduler scheduler : kSchedulers) {
    InflationaryOptions opts;
    opts.context.num_threads = 4;
    opts.context.scheduler = scheduler;
    opts.context.min_slice_rows = 1 << 20;
    auto capped = EvalInflationary(program, db, opts);
    ASSERT_TRUE(capped.ok());
    EXPECT_EQ(capped->stats.parallel_tasks, 0u);
    EXPECT_EQ(capped->stats.slices, 0u);
    ExpectSameRows(reference->state, capped->state);
    ExpectSameStats(reference->stats, capped->stats, "capped cutoff");
  }
}

TEST(AutoSchedulerTest, UniformWorkloadPicksStatic) {
  // Transitive closure over a sparse random digraph: per delta row the
  // probed posting list is one vertex's out-degree — i.i.d. and small —
  // so the estimated work of the static partition's slices is
  // near-uniform and the auto scheduler must keep the static slicer on
  // every parallel stage (stealing's chunk machinery would be pure
  // overhead here).
  Rng rng(424242);
  const size_t n = 48;
  const Digraph g = RandomDigraph(n, 3.0 / n, &rng);
  Database db;
  GraphToDatabase(g, "E", &db);
  Program program = testing::MustProgram(
      "T(X,Y) :- E(X,Y).\n"
      "T(X,Z) :- T(X,Y), E(Y,Z).\n",
      db.shared_symbols());

  InflationaryOptions serial_opts;
  serial_opts.context.num_threads = 1;
  auto serial = EvalInflationary(program, db, serial_opts);
  ASSERT_TRUE(serial.ok());

  InflationaryOptions opts;
  opts.context.num_threads = 4;
  opts.context.scheduler = StageScheduler::kAuto;
  opts.context.min_slice_rows = 16;  // low floor so stages genuinely fan out
  auto result = EvalInflationary(program, db, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.auto_static_stages, 0u);
  EXPECT_EQ(result->stats.auto_stealing_stages, 0u);
  // Stealing never ran, so its bookkeeping stays zero.
  EXPECT_EQ(result->stats.steals, 0u);
  EXPECT_EQ(result->stats.splits, 0u);
  EXPECT_EQ(result->stats.parks, 0u);
  ExpectSameSets(serial->state, result->state);
  EXPECT_EQ(serial->stage_sizes, result->stage_sizes);
  ExpectSameStats(serial->stats, result->stats, "auto uniform");
}

TEST(AutoSchedulerTest, HotShardHubSkewPicksStealing) {
  // Miniature of bench E11: every R tuple hashes into shard 0 and a few
  // hub rows inside the leading slice window hide most of the probe
  // fan-out, so the estimated slice work has coefficient of variation
  // well above the default threshold and the auto scheduler must flip
  // the skewed stage to stealing.
  constexpr char kProgram[] =
      "R(Y) :- Seed(X), E0(X,Y).\n"
      "P(X,Y) :- R(X), Big(X,Y).\n";
  constexpr size_t kRows = 256;       // R tuples, all hashing into shard 0
  constexpr size_t kHubWindow = 64;   // leading R rows holding the hubs
  constexpr size_t kHubStride = 8;    // one hub per 8 rows in the window
  constexpr size_t kHubFanout = 512;  // Big rows per hub (1 elsewhere)

  Database db;
  std::vector<std::string> hot;
  for (size_t i = 0; hot.size() < kRows; ++i) {
    std::string name = "h" + std::to_string(i);
    const Value v = db.shared_symbols()->Intern(name);
    if (ShardOfHash(HashTuple(Tuple{v}), 3) == 0) {
      hot.push_back(std::move(name));
    }
  }
  ASSERT_TRUE(db.AddFactNamed("Seed", {"s"}).ok());
  for (const std::string& name : hot) {
    ASSERT_TRUE(db.AddFactNamed("E0", {"s", name}).ok());
  }
  for (size_t i = 0; i < hot.size(); ++i) {
    const bool hub = i < kHubWindow && i % kHubStride == 0;
    const size_t fanout = hub ? kHubFanout : 1;
    for (size_t j = 0; j < fanout; ++j) {
      ASSERT_TRUE(
          db.AddFactNamed("Big", {hot[i], "t" + std::to_string(j)}).ok());
    }
  }
  Program program = testing::MustProgram(kProgram, db.shared_symbols());

  InflationaryOptions serial_opts;
  serial_opts.context.num_threads = 1;
  auto serial = EvalInflationary(program, db, serial_opts);
  ASSERT_TRUE(serial.ok());

  InflationaryOptions opts;
  opts.context.num_threads = 4;
  opts.context.num_shards = 8;
  opts.context.scheduler = StageScheduler::kAuto;
  opts.context.min_slice_rows = 16;
  auto result = EvalInflationary(program, db, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->stats.auto_stealing_stages, 1u);
  ExpectSameSets(serial->state, result->state);
  EXPECT_EQ(serial->stage_sizes, result->stage_sizes);
  ExpectSameStats(serial->stats, result->stats, "auto skew");

  // Raising the flip threshold above the workload's CV must pin the
  // very same stage back to static — the knob is live end to end.
  InflationaryOptions capped = opts;
  capped.context.steal_variance = 1e9;
  auto pinned = EvalInflationary(program, db, capped);
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(pinned->stats.auto_stealing_stages, 0u);
  EXPECT_GT(pinned->stats.auto_static_stages, 0u);
  ExpectSameSets(serial->state, pinned->state);
  ExpectSameStats(serial->stats, pinned->stats, "auto skew pinned");
}

TEST(AutoSchedulerTest, TinyDeltaPlansAreBatched) {
  // A rule-heavy copy chain: from stage 2 on, most compiled delta plans
  // scan an empty or nearly empty delta. The partition must coalesce
  // those tiny plans into shared tasks (batched_plans) instead of paying
  // one staging relation per plan — under every scheduler, with results
  // still bit-identical to serial.
  Rng rng(515151);
  const size_t n = 24;
  const Digraph g = RandomDigraph(n, 2.5 / n, &rng);
  Database db;
  GraphToDatabase(g, "E", &db);
  std::string text = "C1(X,Y) :- E(X,Y).\n";
  for (int k = 2; k <= 8; ++k) {
    text += "C" + std::to_string(k) + "(X,Y) :- C" + std::to_string(k - 1) +
            "(X,Y).\n";
  }
  Program program = testing::MustProgram(text, db.shared_symbols());

  InflationaryOptions serial_opts;
  serial_opts.context.num_threads = 1;
  auto serial = EvalInflationary(program, db, serial_opts);
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(serial->stats.batched_plans, 0u);  // serial path: no partition

  for (StageScheduler scheduler : kSchedulers) {
    const std::string config =
        "batching scheduler=" + std::string(StageSchedulerName(scheduler));
    InflationaryOptions opts;
    opts.context.num_threads = 2;
    opts.context.scheduler = scheduler;
    opts.context.min_slice_rows = 8;
    auto result = EvalInflationary(program, db, opts);
    ASSERT_TRUE(result.ok()) << config;
    EXPECT_GT(result->stats.batched_plans, 0u) << config;
    ExpectSameRows(serial->state, result->state);
    EXPECT_EQ(serial->stage_sizes, result->stage_sizes) << config;
    ExpectSameStats(serial->stats, result->stats, config);
  }
}

TEST_P(ParallelDeterminism, OptimizerSweepMatchesGreedyPlans) {
  // The plan-optimizer pipeline must preserve the determinism contract
  // twice over. At a fixed pass selection, the {threads × shards ×
  // scheduler} sweep stays bit-identical — rows at a fixed shard count,
  // sets and stats across shard counts, and the opt_* counters
  // everywhere (they are pure functions of program, database and pass
  // selection). And across pass selections, the answer itself —
  // relations, stage count, stage sizes, per-tuple stages — equals the
  // unoptimized greedy plans' exactly.
  Database db = RandomFactDb(8600 + GetParam(), 14, 120);
  Program program = testing::MustProgram(kJoinProgram, db.shared_symbols());

  InflationaryOptions greedy_opts;
  greedy_opts.context.num_threads = 1;
  greedy_opts.context.optimizer_passes = OptimizerPasses::None();
  auto greedy = EvalInflationary(program, db, greedy_opts);
  ASSERT_TRUE(greedy.ok());
  EXPECT_EQ(greedy->stats.opt_plans_reordered, 0u);
  EXPECT_EQ(greedy->stats.opt_subplans_shared, 0u);
  EXPECT_EQ(greedy->stats.opt_rules_eliminated, 0u);

  InflationaryOptions opt_serial_opts;  // optimizer_passes defaults to all
  opt_serial_opts.context.num_threads = 1;
  auto opt_serial = EvalInflationary(program, db, opt_serial_opts);
  ASSERT_TRUE(opt_serial.ok());

  ExpectSameSets(greedy->state, opt_serial->state);
  EXPECT_EQ(greedy->num_stages, opt_serial->num_stages);
  EXPECT_EQ(greedy->stage_sizes, opt_serial->stage_sizes);
  for (size_t i = 0; i < greedy->state.relations.size(); ++i) {
    for (const Tuple& t : greedy->state.relations[i].SortedTuples()) {
      EXPECT_EQ(greedy->TupleStage(i, t), opt_serial->TupleStage(i, t))
          << "relation " << i;
    }
  }

  for (size_t shards : kShardCounts) {
    InflationaryOptions ref_opts;
    ref_opts.context.num_threads = 1;
    ref_opts.context.num_shards = shards;
    auto reference = EvalInflationary(program, db, ref_opts);
    ASSERT_TRUE(reference.ok());

    for (size_t threads : kThreadCounts) {
      for (StageScheduler scheduler : kSchedulers) {
        const std::string config =
            "optimized " + ConfigName(threads, shards, scheduler);
        InflationaryOptions par_opts;
        par_opts.context.num_threads = threads;
        par_opts.context.num_shards = shards;
        par_opts.context.scheduler = scheduler;
        auto parallel = EvalInflationary(program, db, par_opts);
        ASSERT_TRUE(parallel.ok()) << config;

        ExpectSameRows(reference->state, parallel->state);
        ExpectSameSets(greedy->state, parallel->state);
        EXPECT_EQ(greedy->num_stages, parallel->num_stages) << config;
        EXPECT_EQ(greedy->stage_sizes, parallel->stage_sizes) << config;
        ExpectSameStats(opt_serial->stats, parallel->stats, config);
        EXPECT_EQ(opt_serial->stats.opt_rules_eliminated,
                  parallel->stats.opt_rules_eliminated)
            << config;
        EXPECT_EQ(opt_serial->stats.opt_plans_reordered,
                  parallel->stats.opt_plans_reordered)
            << config;
        EXPECT_EQ(opt_serial->stats.opt_subplans_shared,
                  parallel->stats.opt_subplans_shared)
            << config;
        EXPECT_EQ(opt_serial->stats.opt_shared_prefixes,
                  parallel->stats.opt_shared_prefixes)
            << config;
        EXPECT_EQ(opt_serial->stats.opt_shared_rows,
                  parallel->stats.opt_shared_rows)
            << config;
      }
    }
  }
}

/// An edge as a pair of constant names — engine-independent (each engine
/// re-interns them), so one stream drives many sweep configurations.
using Edge = std::pair<std::string, std::string>;

/// A random initial edge set plus a deterministic stream of mixed
/// insert/delete batches over it (deletes drawn from the initial edges so
/// they mostly hit; inserts random, so some duplicate existing rows — the
/// netting paths all fire).
struct UpdateStream {
  std::string facts;
  std::vector<std::pair<std::vector<Edge>, std::vector<Edge>>> batches;
};

UpdateStream RandomUpdateStream(uint64_t seed) {
  Rng rng(seed);
  const size_t n = 12;
  auto sym = [&](uint64_t i) { return std::to_string(i); };
  UpdateStream s;
  std::vector<Edge> edges;
  for (size_t i = 0; i < 30; ++i) {
    edges.emplace_back(sym(rng.Uniform(n)), sym(rng.Uniform(n)));
    s.facts += "E(" + edges.back().first + "," + edges.back().second + ").\n";
  }
  for (size_t b = 0; b < 5; ++b) {
    std::vector<Edge> ins, del;
    for (size_t k = 0; k < 2; ++k) {
      del.push_back(edges[rng.Uniform(edges.size())]);
      ins.emplace_back(sym(rng.Uniform(n)), sym(rng.Uniform(n)));
    }
    s.batches.emplace_back(std::move(ins), std::move(del));
  }
  return s;
}

TEST_P(ParallelDeterminism, IncrementalMaintenanceMatchesScratchAcrossSweep) {
  // The incremental maintainer rides the same parallel stage machinery as
  // the fixpoint drivers, so it owes the same contract: at a fixed shard
  // count the maintained state is row-identical across every (threads,
  // scheduler) configuration, and every configuration's state equals a
  // from-scratch evaluation of the post-update database as a set. Run the
  // sweep on a recursive-plus-negation stratified program (counting and
  // DRed units both maintained) and a positive inflationary one.
  const UpdateStream stream = RandomUpdateStream(8800 + GetParam());
  struct Case {
    SemanticsKind kind;
    const char* program;
  };
  const Case cases[] = {
      {SemanticsKind::kStratified,
       "T(X,Y) :- E(X,Y).\n"
       "T(X,Z) :- T(X,Y), E(Y,Z).\n"
       "N(X,Y) :- E(X,Y), !T(Y,X).\n"},
      {SemanticsKind::kInflationary,
       "T(X,Y) :- E(X,Y).\n"
       "T(X,Z) :- T(X,Y), E(Y,Z).\n"
       "D(X) :- T(X,X).\n"},
  };
  for (const Case& c : cases) {
    // Runs the whole stream through a fresh engine's incremental session,
    // cross-checks the result against a from-scratch evaluation of the
    // mutated database, and returns the maintained state.
    const auto run = [&](const EvalOptions& options,
                         const std::string& config) -> IdbState {
      Engine engine;
      INFLOG_CHECK(engine.LoadProgramText(c.program).ok());
      INFLOG_CHECK(engine.LoadDatabaseText(stream.facts).ok());
      INFLOG_CHECK(engine.BeginIncremental(c.kind, options).ok());
      const auto to_updates = [&](const std::vector<Edge>& edges) {
        std::vector<std::pair<std::string, Tuple>> out;
        for (const Edge& e : edges) {
          out.push_back({"E", Tuple{engine.symbols()->Intern(e.first),
                                    engine.symbols()->Intern(e.second)}});
        }
        return out;
      };
      for (const auto& [ins, del] : stream.batches) {
        auto r = engine.ApplyUpdate(to_updates(ins), to_updates(del));
        INFLOG_CHECK(r.ok()) << config << ": " << r.status().ToString();
        // Both programs are safe, so even universe-growing inserts stay
        // on the incremental path.
        EXPECT_FALSE(r->used_oracle) << config;
      }
      auto state = engine.IncrementalState();
      INFLOG_CHECK(state.ok());
      IdbState maintained = **state;
      auto scratch = engine.Evaluate(c.kind, options);
      INFLOG_CHECK(scratch.ok()) << config << ": "
                                 << scratch.status().ToString();
      ExpectSameSets(scratch->state(), maintained);
      return maintained;
    };

    for (size_t shards : kShardCounts) {
      EvalOptions ref_opts;
      ref_opts.num_threads = 1;
      ref_opts.num_shards = shards;
      const IdbState reference =
          run(ref_opts, std::string(SemanticsKindName(c.kind)) +
                            " incremental reference shards=" +
                            std::to_string(shards));
      for (size_t threads : kThreadCounts) {
        for (StageScheduler scheduler : kSchedulers) {
          const std::string config =
              std::string(SemanticsKindName(c.kind)) + " incremental " +
              ConfigName(threads, shards, scheduler);
          EvalOptions opts;
          opts.num_threads = threads;
          opts.num_shards = shards;
          opts.scheduler = scheduler;
          const IdbState maintained = run(opts, config);
          ExpectSameRows(reference, maintained);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDeterminism, ::testing::Range(0, 6));

}  // namespace
}  // namespace inflog
