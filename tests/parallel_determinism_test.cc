// Parallel-determinism tests: the partitioned fixpoint stage against the
// serial path.
//
// EvalContextOptions::num_threads > 1 splits every stage into (rule plan ×
// delta-row slice) tasks over a base::ThreadPool with a worker-ordered
// merge. That merge order is the serial execution order, so relations
// (including row ids), stage counts, stage_sizes, and the executor stats
// must all be bit-identical to num_threads == 1 — for every thread count,
// on every semantics. These tests hold that invariant on the randomized
// programs of index_correctness_test.cc.
//
// Data-race coverage: build with ThreadSanitizer and run this binary (and
// the relation/executor tests) —
//
//   cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
//     -DCMAKE_CXX_FLAGS=-fsanitize=thread \
//     -DCMAKE_EXE_LINKER_FLAGS=-fsanitize=thread
//   cmake --build build-tsan -j && \
//     ctest --test-dir build-tsan -R 'Parallel|Relation|Executor' \
//       --output-on-failure
//
// The CI workflow runs the same job (see .github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/core/engine.h"
#include "src/eval/inflationary.h"
#include "src/eval/stratified.h"
#include "src/graphs/digraph.h"
#include "tests/test_util.h"

namespace inflog {
namespace {

const size_t kThreadCounts[] = {2, 4, 8};

/// A database of random facts over `num_symbols` constants for the EDB
/// relations A/2, B/2, C/2, D/2 and S/1 (mirrors index_correctness_test).
Database RandomFactDb(uint64_t seed, size_t num_symbols, size_t num_facts) {
  Database db;
  Rng rng(seed);
  auto sym = [&](uint64_t i) { return std::to_string(i); };
  for (size_t i = 0; i < num_symbols; ++i) db.AddUniverseSymbol(sym(i));
  const std::vector<std::string> rels = {"A", "B", "C", "D"};
  for (size_t f = 0; f < num_facts; ++f) {
    const std::string& rel = rels[rng.Uniform(rels.size())];
    INFLOG_CHECK(db.AddFactNamed(rel, {sym(rng.Uniform(num_symbols)),
                                       sym(rng.Uniform(num_symbols))})
                     .ok());
  }
  for (size_t i = 0; i < num_symbols; ++i) {
    if (rng.Bernoulli(0.4)) INFLOG_CHECK(db.AddFactNamed("S", {sym(i)}).ok());
  }
  for (const std::string& rel : rels) {
    INFLOG_CHECK(db.DeclareRelation(rel, 2).ok());
  }
  INFLOG_CHECK(db.DeclareRelation("S", 1).ok());
  return db;
}

/// Join-heavy rules with negation — single- and multi-column keys all
/// appear in the compiled plans, so both the index-intersection path and
/// the slicing path are exercised.
constexpr char kJoinProgram[] =
    "J(X,Z) :- A(X,Y), B(Y,Z).\n"
    "K(X,W) :- J(X,Z), C(Z,W), !D(X,W).\n"
    "L(X) :- K(X,X).\n"
    "M(X,Y) :- J(X,Y), J(Y,X), !L(X).\n";

/// Row-by-row equality: parallel runs must reproduce the serial insertion
/// order, not just the same set (stage bookkeeping reads off row ids).
void ExpectSameRows(const IdbState& serial, const IdbState& parallel) {
  ASSERT_EQ(serial.relations.size(), parallel.relations.size());
  for (size_t i = 0; i < serial.relations.size(); ++i) {
    const Relation& s = serial.relations[i];
    const Relation& p = parallel.relations[i];
    ASSERT_EQ(s.size(), p.size()) << "relation " << i;
    for (size_t r = 0; r < s.size(); ++r) {
      ASSERT_TRUE(TupleEq()(s.Row(r), p.Row(r)))
          << "relation " << i << " row " << r << " differs";
    }
  }
}

class ParallelDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(ParallelDeterminism, InflationaryMatchesSerialBitForBit) {
  Database db = RandomFactDb(7000 + GetParam(), 14, 120);
  Program program = testing::MustProgram(kJoinProgram, db.shared_symbols());

  InflationaryOptions serial_opts;
  serial_opts.context.num_threads = 1;
  auto serial = EvalInflationary(program, db, serial_opts);
  ASSERT_TRUE(serial.ok());

  for (size_t threads : kThreadCounts) {
    InflationaryOptions par_opts;
    par_opts.context.num_threads = threads;
    auto parallel = EvalInflationary(program, db, par_opts);
    ASSERT_TRUE(parallel.ok());

    ExpectSameRows(serial->state, parallel->state);
    EXPECT_EQ(serial->num_stages, parallel->num_stages) << threads;
    EXPECT_EQ(serial->stage_sizes, parallel->stage_sizes) << threads;
    // The stage partition must not change what the executor does, only
    // where it runs: every counter except the fan-out bookkeeping agrees.
    EXPECT_EQ(serial->stats.derivations, parallel->stats.derivations);
    EXPECT_EQ(serial->stats.new_tuples, parallel->stats.new_tuples);
    EXPECT_EQ(serial->stats.rows_matched, parallel->stats.rows_matched);
    EXPECT_EQ(serial->stats.index_lookups, parallel->stats.index_lookups);
    EXPECT_EQ(serial->stats.intersections, parallel->stats.intersections);
    EXPECT_EQ(serial->stats.enumerations, parallel->stats.enumerations);
    EXPECT_EQ(serial->stats.parallel_tasks, 0u);
    EXPECT_GT(parallel->stats.parallel_tasks, 0u);
  }
}

TEST_P(ParallelDeterminism, NaiveDriverMatchesSerial) {
  // use_seminaive=false takes the full-plan (per-rule task) partition at
  // every stage instead of delta slicing.
  Database db = RandomFactDb(7100 + GetParam(), 12, 100);
  Program program = testing::MustProgram(kJoinProgram, db.shared_symbols());

  InflationaryOptions serial_opts;
  serial_opts.use_seminaive = false;
  serial_opts.context.num_threads = 1;
  auto serial = EvalInflationary(program, db, serial_opts);
  ASSERT_TRUE(serial.ok());

  for (size_t threads : kThreadCounts) {
    InflationaryOptions par_opts;
    par_opts.use_seminaive = false;
    par_opts.context.num_threads = threads;
    auto parallel = EvalInflationary(program, db, par_opts);
    ASSERT_TRUE(parallel.ok());
    ExpectSameRows(serial->state, parallel->state);
    EXPECT_EQ(serial->num_stages, parallel->num_stages);
    EXPECT_EQ(serial->stage_sizes, parallel->stage_sizes);
    EXPECT_EQ(serial->stats.derivations, parallel->stats.derivations);
  }
}

TEST_P(ParallelDeterminism, TransitiveClosureManyStagesManySlices) {
  // Larger delta ranges so stages genuinely split into several row slices.
  Rng rng(8000 + GetParam());
  const size_t n = 48;
  const Digraph g = RandomDigraph(n, 3.0 / n, &rng);
  Database db;
  GraphToDatabase(g, "E", &db);
  Program program = testing::MustProgram(
      "T(X,Y) :- E(X,Y).\n"
      "T(X,Z) :- T(X,Y), E(Y,Z).\n",
      db.shared_symbols());

  InflationaryOptions serial_opts;
  serial_opts.context.num_threads = 1;
  auto serial = EvalInflationary(program, db, serial_opts);
  ASSERT_TRUE(serial.ok());

  for (size_t threads : kThreadCounts) {
    InflationaryOptions par_opts;
    par_opts.context.num_threads = threads;
    auto parallel = EvalInflationary(program, db, par_opts);
    ASSERT_TRUE(parallel.ok());
    ExpectSameRows(serial->state, parallel->state);
    EXPECT_EQ(serial->num_stages, parallel->num_stages);
    EXPECT_EQ(serial->stage_sizes, parallel->stage_sizes);
    EXPECT_EQ(serial->stats.rows_matched, parallel->stats.rows_matched);
  }
}

/// Random facts for A/2 and S/1 as parser text, so engines (which own
/// their symbol table) can load them directly.
std::string RandomFactText(uint64_t seed, size_t num_symbols,
                           size_t num_facts) {
  Rng rng(seed);
  // Guarantee both EDB relations exist whatever the seed draws.
  std::string text = "S(0).\n";
  for (size_t f = 0; f < num_facts; ++f) {
    text += "A(" + std::to_string(rng.Uniform(num_symbols)) + "," +
            std::to_string(rng.Uniform(num_symbols)) + ").\n";
  }
  for (size_t i = 0; i < num_symbols; ++i) {
    if (rng.Bernoulli(0.4)) text += "S(" + std::to_string(i) + ").\n";
  }
  return text;
}

TEST_P(ParallelDeterminism, AllFourSemanticsThroughEngine) {
  // The unified entry point: every semantics must answer identically for
  // every thread count (well-founded and stable run the grounded pipeline,
  // where num_threads is inert by design — asserted all the same).
  const std::string program_text =
      "R(X) :- S(X).\n"
      "R(Y) :- R(X), A(X,Y).\n"
      "U(X,Y) :- A(X,Y), !R(X).\n";
  const std::string fact_text = RandomFactText(7300 + GetParam(), 8, 24);
  for (SemanticsKind kind :
       {SemanticsKind::kInflationary, SemanticsKind::kStratified,
        SemanticsKind::kWellFounded, SemanticsKind::kStable}) {
    Engine engine;
    ASSERT_TRUE(engine.LoadProgramText(program_text).ok());
    ASSERT_TRUE(engine.LoadDatabaseText(fact_text).ok());

    EvalOptions serial_opts;
    serial_opts.num_threads = 1;
    auto serial = engine.Evaluate(kind, serial_opts);
    ASSERT_TRUE(serial.ok()) << SemanticsKindName(kind);

    for (size_t threads : kThreadCounts) {
      EvalOptions par_opts;
      par_opts.num_threads = threads;
      auto parallel = engine.Evaluate(kind, par_opts);
      ASSERT_TRUE(parallel.ok()) << SemanticsKindName(kind);
      ExpectSameRows(serial->state(), parallel->state());
      if (kind == SemanticsKind::kStable) {
        const auto& sm = std::get<StableResult>(serial->detail);
        const auto& pm = std::get<StableResult>(parallel->detail);
        ASSERT_EQ(sm.models.size(), pm.models.size());
        for (size_t m = 0; m < sm.models.size(); ++m) {
          EXPECT_EQ(sm.models[m], pm.models[m]) << "stable model " << m;
        }
      }
    }
  }
}

TEST_P(ParallelDeterminism, StratifiedMatchesSerial) {
  Rng rng(9000 + GetParam());
  const size_t n = 16;
  const Digraph g = RandomDigraph(n, 2.0 / n, &rng);
  Database db;
  GraphToDatabase(g, "E", &db);
  ASSERT_TRUE(db.AddFactNamed("S", {"0"}).ok());
  Program program = testing::MustProgram(
      "R(X) :- S(X).\n"
      "R(Y) :- R(X), E(X,Y).\n"
      "U(X,Y) :- E(X,Y), !R(X).\n",
      db.shared_symbols());

  StratifiedOptions serial_opts;
  serial_opts.context.num_threads = 1;
  auto serial = EvalStratified(program, db, serial_opts);
  ASSERT_TRUE(serial.ok());

  for (size_t threads : kThreadCounts) {
    StratifiedOptions par_opts;
    par_opts.context.num_threads = threads;
    auto parallel = EvalStratified(program, db, par_opts);
    ASSERT_TRUE(parallel.ok());
    ExpectSameRows(serial->state, parallel->state);
    EXPECT_EQ(serial->num_strata, parallel->num_strata);
    EXPECT_EQ(serial->stats.derivations, parallel->stats.derivations);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDeterminism, ::testing::Range(0, 6));

}  // namespace
}  // namespace inflog
