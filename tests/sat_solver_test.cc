// Tests for the CDCL solver: crafted instances, DIMACS round-trips, random
// 3-SAT cross-checked against brute force, assumptions, incrementality,
// and model enumeration.

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/sat/dimacs.h"
#include "src/sat/portfolio.h"
#include "src/sat/solver.h"

namespace inflog {
namespace sat {
namespace {

TEST(SolverTest, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_EQ(s.Solve(), SolveResult::kSat);
}

TEST(SolverTest, SingleUnit) {
  Solver s;
  const Var x = s.NewVar();
  ASSERT_TRUE(s.AddClause({Pos(x)}));
  EXPECT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(x));
}

TEST(SolverTest, ContradictoryUnits) {
  Solver s;
  const Var x = s.NewVar();
  s.AddClause({Pos(x)});
  EXPECT_FALSE(s.AddClause({Neg(x)}));
  EXPECT_EQ(s.Solve(), SolveResult::kUnsat);
}

TEST(SolverTest, TautologyIsDropped) {
  Solver s;
  const Var x = s.NewVar();
  ASSERT_TRUE(s.AddClause({Pos(x), Neg(x)}));
  EXPECT_EQ(s.Solve(), SolveResult::kSat);
}

TEST(SolverTest, SimpleImplicationChain) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 20; ++i) v.push_back(s.NewVar());
  for (int i = 0; i + 1 < 20; ++i) {
    s.AddClause({Neg(v[i]), Pos(v[i + 1])});  // vᵢ → vᵢ₊₁
  }
  s.AddClause({Pos(v[0])});
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(s.ModelValue(v[i]));
}

TEST(SolverTest, XorChainUnsat) {
  // x₁ ⊕ x₂, x₂ ⊕ x₃, x₁ ⊕ x₃ with odd parity: unsatisfiable.
  Solver s;
  const Var a = s.NewVar(), b = s.NewVar(), c = s.NewVar();
  auto add_xor_true = [&](Var x, Var y) {
    s.AddClause({Pos(x), Pos(y)});
    s.AddClause({Neg(x), Neg(y)});
  };
  add_xor_true(a, b);
  add_xor_true(b, c);
  add_xor_true(a, c);
  EXPECT_EQ(s.Solve(), SolveResult::kUnsat);
}

/// Pigeonhole principle: n+1 pigeons, n holes — classically UNSAT and a
/// real workout for clause learning.
Cnf Pigeonhole(int n) {
  Cnf cnf;
  std::vector<std::vector<Var>> p(n + 1, std::vector<Var>(n));
  for (int i = 0; i <= n; ++i) {
    for (int j = 0; j < n; ++j) p[i][j] = cnf.NewVar();
  }
  for (int i = 0; i <= n; ++i) {
    Clause c;
    for (int j = 0; j < n; ++j) c.push_back(Pos(p[i][j]));
    cnf.AddClause(c);
  }
  for (int j = 0; j < n; ++j) {
    for (int i1 = 0; i1 <= n; ++i1) {
      for (int i2 = i1 + 1; i2 <= n; ++i2) {
        cnf.AddClause({Neg(p[i1][j]), Neg(p[i2][j])});
      }
    }
  }
  return cnf;
}

class PigeonholeTest : public ::testing::TestWithParam<int> {};

TEST_P(PigeonholeTest, Unsat) {
  Solver s;
  s.AddCnf(Pigeonhole(GetParam()));
  EXPECT_EQ(s.Solve(), SolveResult::kUnsat);
  EXPECT_GT(s.stats().conflicts, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PigeonholeTest, ::testing::Values(2, 3, 4, 5));

TEST(SolverTest, PigeonholeSatWhenEnoughHoles) {
  // n pigeons in n holes is satisfiable: drop one pigeon's clauses.
  Cnf cnf = Pigeonhole(4);
  cnf.clauses.erase(cnf.clauses.begin());  // remove pigeon 0's "somewhere"
  Solver s;
  s.AddCnf(cnf);
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_TRUE(cnf.IsSatisfiedBy(s.Model()));
}

// --- Random 3-SAT vs. brute force. ---

Cnf Random3Sat(int num_vars, int num_clauses, Rng* rng) {
  Cnf cnf;
  for (int i = 0; i < num_vars; ++i) cnf.NewVar();
  for (int c = 0; c < num_clauses; ++c) {
    Clause clause;
    while (clause.size() < 3) {
      const Var v = static_cast<Var>(rng->Uniform(num_vars));
      const Lit lit(v, rng->Bernoulli(0.5));
      bool dup = false;
      for (const Lit& l : clause) dup |= l.var() == v;
      if (!dup) clause.push_back(lit);
    }
    cnf.AddClause(clause);
  }
  return cnf;
}

bool BruteForceSat(const Cnf& cnf) {
  INFLOG_CHECK(cnf.num_vars <= 20);
  const uint32_t total = 1u << cnf.num_vars;
  std::vector<bool> assignment(cnf.num_vars);
  for (uint32_t mask = 0; mask < total; ++mask) {
    for (int v = 0; v < cnf.num_vars; ++v) {
      assignment[v] = (mask >> v) & 1;
    }
    if (cnf.IsSatisfiedBy(assignment)) return true;
  }
  return false;
}

class Random3SatTest : public ::testing::TestWithParam<int> {};

TEST_P(Random3SatTest, MatchesBruteForce) {
  const int seed = GetParam();
  Rng rng(seed * 7919 + 13);
  // Sweep clause/variable ratios through the phase transition (~4.26).
  const int n = 8 + static_cast<int>(rng.Uniform(5));
  const int m = static_cast<int>(n * (2.0 + (seed % 6)));
  Cnf cnf = Random3Sat(n, m, &rng);
  Solver s;
  s.AddCnf(cnf);
  const SolveResult result = s.Solve();
  ASSERT_NE(result, SolveResult::kUnknown);
  EXPECT_EQ(result == SolveResult::kSat, BruteForceSat(cnf))
      << "n=" << n << " m=" << m;
  if (result == SolveResult::kSat) {
    EXPECT_TRUE(cnf.IsSatisfiedBy(s.Model()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Random3SatTest, ::testing::Range(0, 30));

// --- Assumptions and incrementality. ---

TEST(SolverTest, AssumptionsRestrictModels) {
  Solver s;
  const Var x = s.NewVar(), y = s.NewVar();
  s.AddClause({Pos(x), Pos(y)});
  ASSERT_EQ(s.Solve({Neg(x)}), SolveResult::kSat);
  EXPECT_FALSE(s.ModelValue(x));
  EXPECT_TRUE(s.ModelValue(y));
  // Solver state is reusable with different assumptions.
  ASSERT_EQ(s.Solve({Neg(y)}), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(x));
  ASSERT_EQ(s.Solve({Neg(x), Neg(y)}), SolveResult::kUnsat);
  // And without assumptions it is still satisfiable.
  EXPECT_EQ(s.Solve(), SolveResult::kSat);
}

TEST(SolverTest, AssumptionAgainstRootUnit) {
  Solver s;
  const Var x = s.NewVar();
  s.AddClause({Pos(x)});
  EXPECT_EQ(s.Solve({Neg(x)}), SolveResult::kUnsat);
  EXPECT_TRUE(s.ok());  // UNSAT under assumptions, not globally
  EXPECT_EQ(s.Solve(), SolveResult::kSat);
}

TEST(SolverTest, IncrementalClauseAddition) {
  Solver s;
  const Var x = s.NewVar(), y = s.NewVar();
  s.AddClause({Pos(x), Pos(y)});
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  s.AddClause({Neg(x)});
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(y));
  s.AddClause({Neg(y)});
  EXPECT_EQ(s.Solve(), SolveResult::kUnsat);
}

TEST(SolverTest, ActivationLiteralPattern) {
  // The temporary-clause pattern used by the least-fixpoint algorithm.
  Solver s;
  const Var x = s.NewVar();
  const Var act = s.NewVar();
  s.AddClause({Neg(act), Neg(x)});  // act → ¬x
  s.AddClause({Pos(x)});
  EXPECT_EQ(s.Solve({Pos(act)}), SolveResult::kUnsat);
  s.AddClause({Neg(act)});  // retire the query clause
  EXPECT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(x));
}

TEST(SolverTest, ModelEnumerationCountsAllAssignments) {
  // x ∨ y over 3 variables: 6 models on (x,y,z) — block and recount.
  Solver s;
  const Var x = s.NewVar(), y = s.NewVar(), z = s.NewVar();
  s.AddClause({Pos(x), Pos(y)});
  int models = 0;
  while (s.Solve() == SolveResult::kSat && models < 100) {
    ++models;
    Clause block;
    for (Var v : {x, y, z}) {
      block.push_back(s.ModelValue(v) ? Neg(v) : Pos(v));
    }
    if (!s.AddClause(block)) break;
  }
  EXPECT_EQ(models, 6);
}

TEST(SolverTest, ConflictBudgetReturnsUnknown) {
  SolverOptions opts;
  opts.max_conflicts = 1;
  Solver s(opts);
  s.AddCnf(Pigeonhole(4));
  EXPECT_EQ(s.Solve(), SolveResult::kUnknown);
}

TEST(SolverTest, StatsAccumulate) {
  Solver s;
  s.AddCnf(Pigeonhole(4));
  s.Solve();
  EXPECT_GT(s.stats().conflicts, 0u);
  EXPECT_GT(s.stats().decisions, 0u);
  EXPECT_GT(s.stats().propagations, 0u);
}

// --- Preprocessing front-end. ---

TEST(PreprocessTest, PureLiteralsLeaveSatisfiableResidue) {
  SolverOptions opts;
  opts.preprocess = true;
  Solver s(opts);
  Cnf cnf;
  const Var x = cnf.NewVar(), y = cnf.NewVar(), z = cnf.NewVar();
  cnf.AddClause({Pos(x), Pos(y)});
  cnf.AddClause({Pos(x), Neg(z)});
  s.AddCnf(cnf);
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  // The reconstructed model must satisfy the ORIGINAL clauses even though
  // x is pure (and y, z may be eliminated too).
  EXPECT_TRUE(cnf.IsSatisfiedBy(s.Model()));
}

TEST(PreprocessTest, BveReconstructsEliminatedVariables) {
  SolverOptions opts;
  opts.preprocess = true;
  Solver s(opts);
  Cnf cnf;
  // x occurs once per polarity: NiVER resolves it away, replacing
  // (x ∨ a)(¬x ∨ b) with (a ∨ b). The model must still assign x a value
  // satisfying both original clauses.
  const Var x = cnf.NewVar(), a = cnf.NewVar(), b = cnf.NewVar();
  cnf.AddClause({Pos(x), Pos(a)});
  cnf.AddClause({Neg(x), Pos(b)});
  cnf.AddClause({Neg(a), Pos(b)});
  cnf.AddClause({Pos(a), Neg(b)});
  s.AddCnf(cnf);
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_TRUE(cnf.IsSatisfiedBy(s.Model()));
}

TEST(PreprocessTest, DetectsRootUnsat) {
  SolverOptions opts;
  opts.preprocess = true;
  Solver s(opts);
  const Var x = s.NewVar(), y = s.NewVar();
  s.AddClause({Pos(x), Pos(y)});
  s.AddClause({Pos(x), Neg(y)});
  s.AddClause({Neg(x), Pos(y)});
  s.AddClause({Neg(x), Neg(y)});
  EXPECT_EQ(s.Solve(), SolveResult::kUnsat);
}

TEST(PreprocessTest, FrozenVariablesStayAssumable) {
  SolverOptions opts;
  opts.preprocess = true;
  Solver s(opts);
  const Var x = s.NewVar(), y = s.NewVar();
  s.AddClause({Pos(x), Pos(y)});
  s.FreezeVar(x);
  s.FreezeVar(y);
  ASSERT_EQ(s.Solve({Neg(x)}), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(y));
  ASSERT_EQ(s.Solve({Neg(x), Neg(y)}), SolveResult::kUnsat);
  // Incremental clause addition over frozen vars after preprocessing.
  ASSERT_TRUE(s.AddClause({Neg(x)}));
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(y));
}

TEST(PreprocessTest, ReportsEliminationStats) {
  SolverOptions opts;
  opts.preprocess = true;
  Solver s(opts);
  // A unit chain: root BCP forces everything, removing every clause.
  std::vector<Var> v;
  for (int i = 0; i < 10; ++i) v.push_back(s.NewVar());
  s.AddClause({Pos(v[0])});
  for (int i = 0; i + 1 < 10; ++i) s.AddClause({Neg(v[i]), Pos(v[i + 1])});
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_GT(s.stats().preprocess_clauses_removed, 0u);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(s.ModelValue(v[i]));
}

// --- Differential: the modern configurations must agree with the raw
// solver on hundreds of random instances, and every model must satisfy
// the ORIGINAL clauses (exercising reconstruction end to end). ---

TEST(PreprocessDifferentialTest, AgreesWithRawSolverAcross500Instances) {
  for (int seed = 0; seed < 500; ++seed) {
    Rng rng(seed * 104729 + 7);
    const int n = 6 + static_cast<int>(rng.Uniform(9));  // 6..14 vars
    const int m = static_cast<int>(n * (2.0 + (seed % 5)));
    Cnf cnf = Random3Sat(n, m, &rng);

    Solver raw;
    raw.AddCnf(cnf);
    const SolveResult expected = raw.Solve();
    ASSERT_NE(expected, SolveResult::kUnknown) << "seed=" << seed;

    SolverOptions pre_opts;
    pre_opts.preprocess = true;
    Solver pre(pre_opts);
    pre.AddCnf(cnf);
    ASSERT_EQ(pre.Solve(), expected) << "seed=" << seed;
    if (expected == SolveResult::kSat) {
      EXPECT_TRUE(cnf.IsSatisfiedBy(pre.Model())) << "seed=" << seed;
    }

    // Every tenth instance also races a preprocessed portfolio, keeping
    // the thread churn bounded.
    if (seed % 10 == 0) {
      SolverOptions port_opts;
      port_opts.preprocess = true;
      port_opts.portfolio_threads = 3;
      PortfolioSolver port(port_opts);
      port.AddCnf(cnf);
      ASSERT_EQ(port.Solve(), expected) << "seed=" << seed;
      if (expected == SolveResult::kSat) {
        EXPECT_TRUE(cnf.IsSatisfiedBy(port.Model())) << "seed=" << seed;
      }
    }
  }
}

// --- Learnt-clause deletion and arena garbage collection. ---

TEST(ReduceDbTest, DeletesLearntsAndKeepsVerdict) {
  SolverOptions keep;
  keep.reduce_db = false;
  Solver baseline(keep);
  baseline.AddCnf(Pigeonhole(6));

  SolverOptions del;
  del.reduce_db = true;
  del.reduce_base = 100;
  del.reduce_inc = 50;
  Solver reducing(del);
  reducing.AddCnf(Pigeonhole(6));

  ASSERT_EQ(baseline.Solve(), SolveResult::kUnsat);
  ASSERT_EQ(reducing.Solve(), SolveResult::kUnsat);
  EXPECT_GT(reducing.stats().db_reductions, 0u);
  EXPECT_GT(reducing.stats().deleted_clauses, 0u);
  // Live learnts never exceed learned minus deleted (root-satisfied
  // removal can only shrink the list further).
  EXPECT_LE(reducing.num_learnts(),
            reducing.stats().learned_clauses -
                reducing.stats().deleted_clauses);
}

TEST(ReduceDbTest, GarbageCollectionCompactsArena) {
  // Same instance, deletion on vs off: the reducing solver's arena must
  // end strictly smaller — each reduction copies only live clauses into a
  // fresh arena. Both runs are deterministic, so this is stable.
  SolverOptions keep;
  keep.reduce_db = false;
  Solver baseline(keep);
  baseline.AddCnf(Pigeonhole(6));
  ASSERT_EQ(baseline.Solve(), SolveResult::kUnsat);

  SolverOptions del;
  del.reduce_db = true;
  del.reduce_base = 100;
  del.reduce_inc = 50;
  Solver reducing(del);
  reducing.AddCnf(Pigeonhole(6));
  ASSERT_EQ(reducing.Solve(), SolveResult::kUnsat);

  ASSERT_GT(reducing.stats().db_reductions, 0u);
  EXPECT_LT(reducing.arena_words(), baseline.arena_words());
}

TEST(ReduceDbTest, SolverStaysUsableAfterReduction) {
  SolverOptions del;
  del.reduce_db = true;
  del.reduce_base = 100;
  del.reduce_inc = 50;
  Solver s(del);
  Cnf cnf = Pigeonhole(4);
  cnf.clauses.erase(cnf.clauses.begin());  // satisfiable variant
  s.AddCnf(cnf);
  // Drive conflicts with repeated blocking to cross the reduce threshold,
  // checking every model against the (incrementally growing) clause set.
  int models = 0;
  while (s.Solve() == SolveResult::kSat && models < 2000) {
    ++models;
    EXPECT_TRUE(cnf.IsSatisfiedBy(s.Model()));
    Clause block;
    for (Var v = 0; v < s.num_vars(); ++v) {
      block.push_back(s.ModelValue(v) ? Neg(v) : Pos(v));
    }
    if (!s.AddClause(block)) break;
  }
  EXPECT_GT(models, 0);
  EXPECT_LT(models, 2000);  // enumeration terminated
}

// --- Portfolio. ---

TEST(PortfolioTest, WidthOneReproducesPlainSolver) {
  Solver plain;
  plain.AddCnf(Pigeonhole(5));
  SolverOptions popts;
  popts.portfolio_threads = 1;
  PortfolioSolver port(popts);
  port.AddCnf(Pigeonhole(5));
  ASSERT_EQ(plain.Solve(), SolveResult::kUnsat);
  ASSERT_EQ(port.Solve(), SolveResult::kUnsat);
  // Bit-identical search, not just the same verdict.
  EXPECT_EQ(port.stats().conflicts, plain.stats().conflicts);
  EXPECT_EQ(port.stats().decisions, plain.stats().decisions);
  EXPECT_EQ(port.stats().propagations, plain.stats().propagations);
}

TEST(PortfolioTest, RacedMembersAgreeOnVerdict) {
  for (int seed = 0; seed < 20; ++seed) {
    Rng rng(seed * 31337 + 5);
    Cnf cnf = Random3Sat(10, 10 * (3 + seed % 3), &rng);
    Solver single;
    single.AddCnf(cnf);
    const SolveResult expected = single.Solve();
    SolverOptions popts;
    popts.portfolio_threads = 4;
    PortfolioSolver port(popts);
    port.AddCnf(cnf);
    ASSERT_EQ(port.Solve(), expected) << "seed=" << seed;
    if (expected == SolveResult::kSat) {
      EXPECT_TRUE(cnf.IsSatisfiedBy(port.Model())) << "seed=" << seed;
    }
  }
}

TEST(PortfolioTest, SupportsAssumptionsAndIncrementalClauses) {
  SolverOptions popts;
  popts.portfolio_threads = 2;
  PortfolioSolver s(popts);
  const Var x = s.NewVar(), y = s.NewVar();
  ASSERT_TRUE(s.AddClause({Pos(x), Pos(y)}));
  ASSERT_EQ(s.Solve({Neg(x)}), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(y));
  ASSERT_EQ(s.Solve({Neg(x), Neg(y)}), SolveResult::kUnsat);
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  ASSERT_TRUE(s.AddClause({Neg(x)}));
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(y));
}

TEST(PortfolioTest, ModelEnumerationWithBlockingClauses) {
  SolverOptions popts;
  popts.portfolio_threads = 2;
  PortfolioSolver s(popts);
  const Var x = s.NewVar(), y = s.NewVar(), z = s.NewVar();
  s.AddClause({Pos(x), Pos(y)});
  int models = 0;
  while (s.Solve() == SolveResult::kSat && models < 100) {
    ++models;
    Clause block;
    for (Var v : {x, y, z}) {
      block.push_back(s.ModelValue(v) ? Neg(v) : Pos(v));
    }
    if (!s.AddClause(block)) break;
  }
  EXPECT_EQ(models, 6);
}

// --- DIMACS. ---

TEST(DimacsTest, ParsesSimpleFile) {
  auto cnf = ParseDimacs(
      "c a comment\n"
      "p cnf 3 2\n"
      "1 -2 0\n"
      "2 3 0\n");
  ASSERT_TRUE(cnf.ok());
  EXPECT_EQ(cnf->num_vars, 3);
  ASSERT_EQ(cnf->clauses.size(), 2u);
  EXPECT_EQ(cnf->clauses[0][0], Pos(0));
  EXPECT_EQ(cnf->clauses[0][1], Neg(1));
}

TEST(DimacsTest, MultiplClausesPerLine) {
  auto cnf = ParseDimacs("p cnf 2 2\n1 0 -1 2 0\n");
  ASSERT_TRUE(cnf.ok());
  EXPECT_EQ(cnf->clauses.size(), 2u);
}

TEST(DimacsTest, RejectsMissingHeader) {
  EXPECT_FALSE(ParseDimacs("1 2 0\n").ok());
}

TEST(DimacsTest, RejectsOutOfRangeLiteral) {
  EXPECT_FALSE(ParseDimacs("p cnf 2 1\n3 0\n").ok());
}

TEST(DimacsTest, RejectsUnterminatedClause) {
  EXPECT_FALSE(ParseDimacs("p cnf 2 1\n1 2\n").ok());
}

TEST(DimacsTest, RoundTrip) {
  Rng rng(99);
  Cnf original = Random3Sat(6, 15, &rng);
  auto parsed = ParseDimacs(ToDimacs(original));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_vars, original.num_vars);
  ASSERT_EQ(parsed->clauses.size(), original.clauses.size());
  for (size_t i = 0; i < original.clauses.size(); ++i) {
    EXPECT_EQ(parsed->clauses[i], original.clauses[i]);
  }
}

}  // namespace
}  // namespace sat
}  // namespace inflog
