// Tests for the CDCL solver: crafted instances, DIMACS round-trips, random
// 3-SAT cross-checked against brute force, assumptions, incrementality,
// and model enumeration.

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/sat/dimacs.h"
#include "src/sat/solver.h"

namespace inflog {
namespace sat {
namespace {

TEST(SolverTest, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_EQ(s.Solve(), SolveResult::kSat);
}

TEST(SolverTest, SingleUnit) {
  Solver s;
  const Var x = s.NewVar();
  ASSERT_TRUE(s.AddClause({Pos(x)}));
  EXPECT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(x));
}

TEST(SolverTest, ContradictoryUnits) {
  Solver s;
  const Var x = s.NewVar();
  s.AddClause({Pos(x)});
  EXPECT_FALSE(s.AddClause({Neg(x)}));
  EXPECT_EQ(s.Solve(), SolveResult::kUnsat);
}

TEST(SolverTest, TautologyIsDropped) {
  Solver s;
  const Var x = s.NewVar();
  ASSERT_TRUE(s.AddClause({Pos(x), Neg(x)}));
  EXPECT_EQ(s.Solve(), SolveResult::kSat);
}

TEST(SolverTest, SimpleImplicationChain) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 20; ++i) v.push_back(s.NewVar());
  for (int i = 0; i + 1 < 20; ++i) {
    s.AddClause({Neg(v[i]), Pos(v[i + 1])});  // vᵢ → vᵢ₊₁
  }
  s.AddClause({Pos(v[0])});
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(s.ModelValue(v[i]));
}

TEST(SolverTest, XorChainUnsat) {
  // x₁ ⊕ x₂, x₂ ⊕ x₃, x₁ ⊕ x₃ with odd parity: unsatisfiable.
  Solver s;
  const Var a = s.NewVar(), b = s.NewVar(), c = s.NewVar();
  auto add_xor_true = [&](Var x, Var y) {
    s.AddClause({Pos(x), Pos(y)});
    s.AddClause({Neg(x), Neg(y)});
  };
  add_xor_true(a, b);
  add_xor_true(b, c);
  add_xor_true(a, c);
  EXPECT_EQ(s.Solve(), SolveResult::kUnsat);
}

/// Pigeonhole principle: n+1 pigeons, n holes — classically UNSAT and a
/// real workout for clause learning.
Cnf Pigeonhole(int n) {
  Cnf cnf;
  std::vector<std::vector<Var>> p(n + 1, std::vector<Var>(n));
  for (int i = 0; i <= n; ++i) {
    for (int j = 0; j < n; ++j) p[i][j] = cnf.NewVar();
  }
  for (int i = 0; i <= n; ++i) {
    Clause c;
    for (int j = 0; j < n; ++j) c.push_back(Pos(p[i][j]));
    cnf.AddClause(c);
  }
  for (int j = 0; j < n; ++j) {
    for (int i1 = 0; i1 <= n; ++i1) {
      for (int i2 = i1 + 1; i2 <= n; ++i2) {
        cnf.AddClause({Neg(p[i1][j]), Neg(p[i2][j])});
      }
    }
  }
  return cnf;
}

class PigeonholeTest : public ::testing::TestWithParam<int> {};

TEST_P(PigeonholeTest, Unsat) {
  Solver s;
  s.AddCnf(Pigeonhole(GetParam()));
  EXPECT_EQ(s.Solve(), SolveResult::kUnsat);
  EXPECT_GT(s.stats().conflicts, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PigeonholeTest, ::testing::Values(2, 3, 4, 5));

TEST(SolverTest, PigeonholeSatWhenEnoughHoles) {
  // n pigeons in n holes is satisfiable: drop one pigeon's clauses.
  Cnf cnf = Pigeonhole(4);
  cnf.clauses.erase(cnf.clauses.begin());  // remove pigeon 0's "somewhere"
  Solver s;
  s.AddCnf(cnf);
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_TRUE(cnf.IsSatisfiedBy(s.Model()));
}

// --- Random 3-SAT vs. brute force. ---

Cnf Random3Sat(int num_vars, int num_clauses, Rng* rng) {
  Cnf cnf;
  for (int i = 0; i < num_vars; ++i) cnf.NewVar();
  for (int c = 0; c < num_clauses; ++c) {
    Clause clause;
    while (clause.size() < 3) {
      const Var v = static_cast<Var>(rng->Uniform(num_vars));
      const Lit lit(v, rng->Bernoulli(0.5));
      bool dup = false;
      for (const Lit& l : clause) dup |= l.var() == v;
      if (!dup) clause.push_back(lit);
    }
    cnf.AddClause(clause);
  }
  return cnf;
}

bool BruteForceSat(const Cnf& cnf) {
  INFLOG_CHECK(cnf.num_vars <= 20);
  const uint32_t total = 1u << cnf.num_vars;
  std::vector<bool> assignment(cnf.num_vars);
  for (uint32_t mask = 0; mask < total; ++mask) {
    for (int v = 0; v < cnf.num_vars; ++v) {
      assignment[v] = (mask >> v) & 1;
    }
    if (cnf.IsSatisfiedBy(assignment)) return true;
  }
  return false;
}

class Random3SatTest : public ::testing::TestWithParam<int> {};

TEST_P(Random3SatTest, MatchesBruteForce) {
  const int seed = GetParam();
  Rng rng(seed * 7919 + 13);
  // Sweep clause/variable ratios through the phase transition (~4.26).
  const int n = 8 + static_cast<int>(rng.Uniform(5));
  const int m = static_cast<int>(n * (2.0 + (seed % 6)));
  Cnf cnf = Random3Sat(n, m, &rng);
  Solver s;
  s.AddCnf(cnf);
  const SolveResult result = s.Solve();
  ASSERT_NE(result, SolveResult::kUnknown);
  EXPECT_EQ(result == SolveResult::kSat, BruteForceSat(cnf))
      << "n=" << n << " m=" << m;
  if (result == SolveResult::kSat) {
    EXPECT_TRUE(cnf.IsSatisfiedBy(s.Model()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Random3SatTest, ::testing::Range(0, 30));

// --- Assumptions and incrementality. ---

TEST(SolverTest, AssumptionsRestrictModels) {
  Solver s;
  const Var x = s.NewVar(), y = s.NewVar();
  s.AddClause({Pos(x), Pos(y)});
  ASSERT_EQ(s.Solve({Neg(x)}), SolveResult::kSat);
  EXPECT_FALSE(s.ModelValue(x));
  EXPECT_TRUE(s.ModelValue(y));
  // Solver state is reusable with different assumptions.
  ASSERT_EQ(s.Solve({Neg(y)}), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(x));
  ASSERT_EQ(s.Solve({Neg(x), Neg(y)}), SolveResult::kUnsat);
  // And without assumptions it is still satisfiable.
  EXPECT_EQ(s.Solve(), SolveResult::kSat);
}

TEST(SolverTest, AssumptionAgainstRootUnit) {
  Solver s;
  const Var x = s.NewVar();
  s.AddClause({Pos(x)});
  EXPECT_EQ(s.Solve({Neg(x)}), SolveResult::kUnsat);
  EXPECT_TRUE(s.ok());  // UNSAT under assumptions, not globally
  EXPECT_EQ(s.Solve(), SolveResult::kSat);
}

TEST(SolverTest, IncrementalClauseAddition) {
  Solver s;
  const Var x = s.NewVar(), y = s.NewVar();
  s.AddClause({Pos(x), Pos(y)});
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  s.AddClause({Neg(x)});
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(y));
  s.AddClause({Neg(y)});
  EXPECT_EQ(s.Solve(), SolveResult::kUnsat);
}

TEST(SolverTest, ActivationLiteralPattern) {
  // The temporary-clause pattern used by the least-fixpoint algorithm.
  Solver s;
  const Var x = s.NewVar();
  const Var act = s.NewVar();
  s.AddClause({Neg(act), Neg(x)});  // act → ¬x
  s.AddClause({Pos(x)});
  EXPECT_EQ(s.Solve({Pos(act)}), SolveResult::kUnsat);
  s.AddClause({Neg(act)});  // retire the query clause
  EXPECT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(x));
}

TEST(SolverTest, ModelEnumerationCountsAllAssignments) {
  // x ∨ y over 3 variables: 6 models on (x,y,z) — block and recount.
  Solver s;
  const Var x = s.NewVar(), y = s.NewVar(), z = s.NewVar();
  s.AddClause({Pos(x), Pos(y)});
  int models = 0;
  while (s.Solve() == SolveResult::kSat && models < 100) {
    ++models;
    Clause block;
    for (Var v : {x, y, z}) {
      block.push_back(s.ModelValue(v) ? Neg(v) : Pos(v));
    }
    if (!s.AddClause(block)) break;
  }
  EXPECT_EQ(models, 6);
}

TEST(SolverTest, ConflictBudgetReturnsUnknown) {
  SolverOptions opts;
  opts.max_conflicts = 1;
  Solver s(opts);
  s.AddCnf(Pigeonhole(4));
  EXPECT_EQ(s.Solve(), SolveResult::kUnknown);
}

TEST(SolverTest, StatsAccumulate) {
  Solver s;
  s.AddCnf(Pigeonhole(4));
  s.Solve();
  EXPECT_GT(s.stats().conflicts, 0u);
  EXPECT_GT(s.stats().decisions, 0u);
  EXPECT_GT(s.stats().propagations, 0u);
}

// --- DIMACS. ---

TEST(DimacsTest, ParsesSimpleFile) {
  auto cnf = ParseDimacs(
      "c a comment\n"
      "p cnf 3 2\n"
      "1 -2 0\n"
      "2 3 0\n");
  ASSERT_TRUE(cnf.ok());
  EXPECT_EQ(cnf->num_vars, 3);
  ASSERT_EQ(cnf->clauses.size(), 2u);
  EXPECT_EQ(cnf->clauses[0][0], Pos(0));
  EXPECT_EQ(cnf->clauses[0][1], Neg(1));
}

TEST(DimacsTest, MultiplClausesPerLine) {
  auto cnf = ParseDimacs("p cnf 2 2\n1 0 -1 2 0\n");
  ASSERT_TRUE(cnf.ok());
  EXPECT_EQ(cnf->clauses.size(), 2u);
}

TEST(DimacsTest, RejectsMissingHeader) {
  EXPECT_FALSE(ParseDimacs("1 2 0\n").ok());
}

TEST(DimacsTest, RejectsOutOfRangeLiteral) {
  EXPECT_FALSE(ParseDimacs("p cnf 2 1\n3 0\n").ok());
}

TEST(DimacsTest, RejectsUnterminatedClause) {
  EXPECT_FALSE(ParseDimacs("p cnf 2 1\n1 2\n").ok());
}

TEST(DimacsTest, RoundTrip) {
  Rng rng(99);
  Cnf original = Random3Sat(6, 15, &rng);
  auto parsed = ParseDimacs(ToDimacs(original));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_vars, original.num_vars);
  ASSERT_EQ(parsed->clauses.size(), original.clauses.size());
  for (size_t i = 0; i < original.clauses.size(); ++i) {
    EXPECT_EQ(parsed->clauses[i], original.clauses[i]);
  }
}

}  // namespace
}  // namespace sat
}  // namespace inflog
