// Tests for the logic module: FO model checking, NNF/prenex/Skolem
// transformations, the Theorem 1 compiler (cross-checked against ∃SO
// brute force and the CDCL oracle), the fixpoint formula φ_π, and the
// FO+IFP translations of Proposition 1.

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/base/strings.h"
#include "src/eval/inflationary.h"
#include "src/eval/theta.h"
#include "src/fixpoint/analysis.h"
#include "src/logic/eval.h"
#include "src/logic/fixpoint_formula.h"
#include "src/logic/ifp.h"
#include "src/logic/thm1.h"
#include "src/logic/transform.h"
#include "src/reductions/sat_db.h"
#include "src/sat/solver.h"
#include "tests/test_util.h"

namespace inflog {
namespace {

using logic::And;
using logic::Atom;
using logic::EsoSentence;
using logic::EvalEsoBruteForce;
using logic::EvalFormula;
using logic::Exists;
using logic::FoModel;
using logic::Forall;
using logic::FormulaPtr;
using logic::FoTerm;
using logic::Iff;
using logic::Implies;
using logic::Not;
using logic::Or;
using logic::RelVar;
using logic::ToNnf;
using logic::ToPrenex;
using testing::DbFromGraph;
using testing::MustProgram;

FoTerm V(const char* name) { return FoTerm::Var(name); }

// --- Model checking. ---

TEST(FoEvalTest, AtomsAndQuantifiers) {
  auto symbols = std::make_shared<SymbolTable>();
  Database db = DbFromGraph(PathGraph(3), symbols);  // E = {01, 12}
  FoModel model{&db, {}};
  // ∃x∃y E(x,y)
  EXPECT_TRUE(*EvalFormula(
      model, Exists({"x", "y"}, Atom("E", {V("x"), V("y")}))));
  // ∀x∃y E(x,y) — vertex 2 has no successor.
  EXPECT_FALSE(*EvalFormula(
      model, Forall({"x"}, Exists({"y"}, Atom("E", {V("x"), V("y")})))));
  // ∃x∀y ¬E(y,x) — vertex 0 has no predecessor.
  EXPECT_TRUE(*EvalFormula(
      model,
      Exists({"x"}, Forall({"y"}, Not(Atom("E", {V("y"), V("x")}))))));
}

TEST(FoEvalTest, EqualityAndConstants) {
  auto symbols = std::make_shared<SymbolTable>();
  Database db = DbFromGraph(PathGraph(2), symbols);
  FoModel model{&db, {}};
  EXPECT_TRUE(*EvalFormula(
      model, Atom("E", {FoTerm::Const("0"), FoTerm::Const("1")})));
  EXPECT_TRUE(*EvalFormula(
      model, Exists({"x"}, logic::Eq(V("x"), FoTerm::Const("1")))));
  EXPECT_FALSE(*EvalFormula(
      model, logic::Eq(FoTerm::Const("0"), FoTerm::Const("1"))));
  EXPECT_FALSE(EvalFormula(model, Atom("Nope", {V("x")})).ok());
  EXPECT_FALSE(
      EvalFormula(model, Atom("E", {FoTerm::Const("missing"), V("x")}))
          .ok());
}

TEST(FoEvalTest, OverlayShadowsDatabase) {
  auto symbols = std::make_shared<SymbolTable>();
  Database db = DbFromGraph(PathGraph(2), symbols);
  Relation overlay(2);  // empty E
  FoModel model{&db, {{"E", &overlay}}};
  EXPECT_FALSE(*EvalFormula(
      model, Exists({"x", "y"}, Atom("E", {V("x"), V("y")}))));
}

TEST(FoEvalTest, QuantifierShadowing) {
  auto symbols = std::make_shared<SymbolTable>();
  Database db = DbFromGraph(PathGraph(3), symbols);
  FoModel model{&db, {}};
  // ∃x (E(x, ...) where inner ∃x rebinds): ∃x∃y(E(x,y) ∧ ∃x E(y,x)).
  FormulaPtr f = Exists(
      {"x", "y"},
      And({Atom("E", {V("x"), V("y")}),
           Exists({"x"}, Atom("E", {V("y"), V("x")}))}));
  EXPECT_TRUE(*EvalFormula(model, f));  // x=0,y=1, inner x=2
}

// --- Transformations. ---

TEST(TransformTest, NnfPushesNegation) {
  FormulaPtr f = Not(Forall(
      {"x"}, Implies(Atom("P", {V("x")}), Atom("Q", {V("x")}))));
  FormulaPtr nnf = ToNnf(f);
  // ¬∀x(¬P ∨ Q) = ∃x(P ∧ ¬Q)
  EXPECT_EQ(nnf->ToString(), "exists x. (P(x) & ~Q(x))");
}

TEST(TransformTest, NnfDoubleNegation) {
  FormulaPtr f = Not(Not(Atom("P", {V("x")})));
  EXPECT_EQ(ToNnf(f)->ToString(), "P(x)");
}

TEST(TransformTest, PrenexPullsQuantifiersForallFirst) {
  int counter = 0;
  // (∃x P(x)) ∧ (∀y Q(y)): merged prefix should lead with the ∀.
  FormulaPtr f = logic::RenameBoundApart(
      ToNnf(And({Exists({"x"}, Atom("P", {V("x")})),
                 Forall({"y"}, Atom("Q", {V("y")}))})),
      &counter);
  auto p = ToPrenex(f);
  ASSERT_EQ(p.prefix.size(), 2u);
  EXPECT_TRUE(p.prefix[0].first);   // ∀ first
  EXPECT_FALSE(p.prefix[1].first);  // then ∃
  EXPECT_TRUE(p.IsForallExists());
}

TEST(TransformTest, SnfPassThroughOnForallExists) {
  // ∃S ∀x∃y (S(x) ∨ E(x,y)) is already in the right prefix shape.
  EsoSentence s;
  s.so_vars = {RelVar{"S", 1}};
  s.matrix = Forall(
      {"x"}, Exists({"y"}, Or({Atom("S", {V("x")}),
                               Atom("E", {V("x"), V("y")})})));
  auto snf = logic::ToSkolemNormalForm(s);
  ASSERT_TRUE(snf.ok());
  EXPECT_EQ(snf->so_vars.size(), 1u);  // no graph relations introduced
  EXPECT_EQ(snf->universal_vars.size(), 1u);
  EXPECT_EQ(snf->existential_vars.size(), 1u);
  EXPECT_EQ(snf->disjuncts.size(), 2u);
}

TEST(TransformTest, SnfRewritesExistsBeforeForall) {
  // ∃y∀x E(y,x): the ∃ precedes a ∀, so the function-graph rewrite must
  // introduce one new relation variable.
  EsoSentence s;
  s.matrix = Exists({"y"}, Forall({"x"}, Atom("E", {V("y"), V("x")})));
  auto snf = logic::ToSkolemNormalForm(s);
  ASSERT_TRUE(snf.ok());
  EXPECT_EQ(snf->so_vars.size(), 1u);  // the introduced X
  // Prefix is now ∀*∃*.
  EXPECT_FALSE(snf->universal_vars.empty());
  EXPECT_FALSE(snf->existential_vars.empty());
}

TEST(TransformTest, DnfAbsorption) {
  // V(x) ∨ (V(x) ∧ P(x)) absorbs to V(x).
  EsoSentence s;
  s.matrix = Forall(
      {"x"}, Or({Atom("V", {V("x")}),
                 And({Atom("V", {V("x")}), Atom("P", {V("x")})})}));
  auto snf = logic::ToSkolemNormalForm(s);
  ASSERT_TRUE(snf.ok());
  EXPECT_EQ(snf->disjuncts.size(), 1u);
  EXPECT_EQ(snf->disjuncts[0].size(), 1u);
}

TEST(TransformTest, DnfDropsContradictions) {
  // (P(x) ∧ ¬P(x)) ∨ Q(x) → Q(x).
  EsoSentence s;
  s.matrix = Forall(
      {"x"}, Or({And({Atom("P", {V("x")}), Not(Atom("P", {V("x")}))}),
                 Atom("Q", {V("x")})}));
  auto snf = logic::ToSkolemNormalForm(s);
  ASSERT_TRUE(snf.ok());
  EXPECT_EQ(snf->disjuncts.size(), 1u);
}

// --- Theorem 1 compiler vs. brute force (the semantic equivalence). ---

struct Thm1Case {
  std::string name;
  EsoSentence sentence;
  Digraph graph;
};

std::vector<Thm1Case> Thm1Cases() {
  std::vector<Thm1Case> cases;
  // 2-colorability: ∃S ∀x∀y (¬E(x,y) ∨ (S(x) ⊻ S(y))).
  auto xor_formula = And({Or({Atom("S", {V("x")}), Atom("S", {V("y")})}),
                          Or({Not(Atom("S", {V("x")})),
                              Not(Atom("S", {V("y")}))})});
  EsoSentence two_col;
  two_col.so_vars = {RelVar{"S", 1}};
  two_col.matrix = Forall(
      {"x", "y"},
      Or({Not(Atom("E", {V("x"), V("y")})), xor_formula}));
  for (size_t n : {3u, 4u, 5u, 6u}) {
    cases.push_back({StrCat("2col-C", n), two_col, CycleGraph(n)});
  }
  // Kernel-of-sorts: ∃S ∀x ∃y (S(x) ∨ (E(x,y) ∧ S(y))).
  EsoSentence cover;
  cover.so_vars = {RelVar{"S", 1}};
  cover.matrix = Forall(
      {"x"}, Exists({"y"}, Or({Atom("S", {V("x")}),
                               And({Atom("E", {V("x"), V("y")}),
                                    Atom("S", {V("y")})})})));
  cases.push_back({"cover-L3", cover, PathGraph(3)});
  cases.push_back({"cover-C4", cover, CycleGraph(4)});
  // Pure FO with ∃∀ alternation (exercises the Skolem rewrite):
  // ∃y ∀x E(y,x) — some vertex reaching everything (incl. itself).
  EsoSentence apex;
  apex.matrix = Exists({"y"}, Forall({"x"}, Atom("E", {V("y"), V("x")})));
  Digraph with_apex(3);
  for (size_t v = 0; v < 3; ++v) with_apex.AddEdge(0, v);  // 0 → all
  cases.push_back({"apex-yes", apex, with_apex});
  cases.push_back({"apex-no", apex, PathGraph(3)});
  // ∀x ∃y ∀z (E(x,y) ∨ ¬E(y,z)): inner ∃∀ alternation.
  EsoSentence nested;
  nested.matrix = Forall(
      {"x"},
      Exists({"y"}, Forall({"z"}, Or({Atom("E", {V("x"), V("y")}),
                                      Not(Atom("E", {V("y"), V("z")}))}))));
  cases.push_back({"nested-L3", nested, PathGraph(3)});
  cases.push_back({"nested-C3", nested, CycleGraph(3)});
  return cases;
}

class Thm1Compile : public ::testing::TestWithParam<size_t> {};

TEST_P(Thm1Compile, FixpointExistenceMatchesSentenceTruth) {
  const Thm1Case c = Thm1Cases()[GetParam()];
  auto symbols = std::make_shared<SymbolTable>();
  Database db = DbFromGraph(c.graph, symbols);
  FoModel model{&db, {}};
  auto truth = EvalEsoBruteForce(model, c.sentence);
  ASSERT_TRUE(truth.ok()) << c.name << ": " << truth.status().ToString();

  auto compiled = logic::CompileEsoToDatalog(c.sentence, symbols);
  ASSERT_TRUE(compiled.ok()) << c.name << ": "
                             << compiled.status().ToString();
  auto analyzer = FixpointAnalyzer::Create(&compiled->program, &db);
  ASSERT_TRUE(analyzer.ok()) << c.name << "\n" << compiled->program_text;
  auto has = analyzer->HasFixpoint();
  ASSERT_TRUE(has.ok()) << c.name;
  EXPECT_EQ(*has, *truth) << c.name << "\nprogram:\n"
                          << compiled->program_text;
}

INSTANTIATE_TEST_SUITE_P(Cases, Thm1Compile,
                         ::testing::Range<size_t>(0, 10));

TEST(Thm1Test, SatSentenceMatchesPiSat) {
  // The paper's Example 1 sentence, compiled generically, agrees with the
  // hand-written π_SAT and with the CDCL oracle.
  using logic::Eq;
  auto sat_matrix = Forall(
      {"x"},
      Exists({"y"},
             Or({Atom("V", {V("x")}),
                 And({Not(Atom("S", {V("x")})),
                      Atom("P", {V("x"), V("y")}), Atom("S", {V("y")})}),
                 And({Not(Atom("S", {V("x")})),
                      Atom("N", {V("x"), V("y")}),
                      Not(Atom("S", {V("y")}))})})));
  EsoSentence psi;
  psi.so_vars = {RelVar{"S", 1}};
  psi.matrix = sat_matrix;

  for (int seed : {1, 2, 3, 4, 5, 6}) {
    Rng rng(seed * 271);
    sat::Cnf cnf;
    for (int i = 0; i < 5; ++i) cnf.NewVar();
    for (int c = 0; c < 8 + seed; ++c) {
      sat::Clause clause;
      while (clause.size() < 3) {
        const sat::Var v = static_cast<sat::Var>(rng.Uniform(5));
        bool dup = false;
        for (const sat::Lit& l : clause) dup |= l.var() == v;
        if (!dup) clause.push_back(sat::Lit(v, rng.Bernoulli(0.5)));
      }
      cnf.AddClause(clause);
    }
    sat::Solver oracle;
    oracle.AddCnf(cnf);
    const bool satisfiable = oracle.Solve() == sat::SolveResult::kSat;

    auto symbols = std::make_shared<SymbolTable>();
    Database db = SatToDatabase(cnf, symbols);
    auto compiled = logic::CompileEsoToDatalog(psi, symbols);
    ASSERT_TRUE(compiled.ok());
    auto analyzer = FixpointAnalyzer::Create(&compiled->program, &db);
    ASSERT_TRUE(analyzer.ok());
    auto has = analyzer->HasFixpoint();
    ASSERT_TRUE(has.ok());
    EXPECT_EQ(*has, satisfiable) << "seed " << seed;
  }
}

// --- φ_π. ---

class FixpointFormula : public ::testing::TestWithParam<int> {};

TEST_P(FixpointFormula, AgreesWithThetaOnRandomStates) {
  const int seed = GetParam();
  Rng rng(seed * 613 + 11);
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram(
      "T(X) :- E(Y,X), !T(Y).\n"
      "S(X,Y) :- E(X,Y).\n"
      "S(X,Y) :- E(X,Z), S(Z,Y), !T(X).\n",
      symbols);
  const Digraph g = RandomDigraph(3, 0.4, &rng);
  Database db = DbFromGraph(g, symbols);
  auto ctx = EvalContext::Create(p, db);
  ASSERT_TRUE(ctx.ok());
  ThetaOperator theta(&*ctx);
  // Random candidate states.
  for (int trial = 0; trial < 10; ++trial) {
    IdbState state = MakeEmptyIdbState(p);
    for (Value a : db.universe()) {
      if (rng.Bernoulli(0.4)) state.relations[0].Insert(Tuple{a});
      for (Value b : db.universe()) {
        if (rng.Bernoulli(0.3)) state.relations[1].Insert(Tuple{a, b});
      }
    }
    auto via_formula = logic::FormulaSaysFixpoint(p, db, state);
    ASSERT_TRUE(via_formula.ok()) << via_formula.status().ToString();
    EXPECT_EQ(*via_formula, theta.IsFixpoint(state))
        << IdbStateToString(p, state);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FixpointFormula, ::testing::Range(0, 6));

TEST(FixpointFormulaTest, KnownFixpointsOfPi1) {
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram("T(X) :- E(Y,X), !T(Y).", symbols);
  Database db = DbFromGraph(PathGraph(4), symbols);
  IdbState good = MakeEmptyIdbState(p);
  good.relations[0].Insert(Tuple{symbols->Intern("1")});
  good.relations[0].Insert(Tuple{symbols->Intern("3")});
  EXPECT_TRUE(*logic::FormulaSaysFixpoint(p, db, good));
  IdbState bad = MakeEmptyIdbState(p);
  EXPECT_FALSE(*logic::FormulaSaysFixpoint(p, db, bad));
}

// --- Proposition 1: FO+IFP ↔ Inflationary DATALOG. ---

TEST(IfpTest, ProgramToOperatorMatchesInflationary) {
  // π₁ has one nondatabase relation; its operator formula iterated
  // inflationarily must equal EvalInflationary.
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram("T(X) :- E(Y,X), !T(Y).", symbols);
  for (size_t n : {3u, 5u}) {
    Database db = DbFromGraph(CycleGraph(n), symbols);
    auto op = logic::ProgramToIfpOperator(p);
    ASSERT_TRUE(op.ok());
    FoModel model{&db, {}};
    auto ifp = logic::InflationaryFixpointOfFormula(model, *op);
    ASSERT_TRUE(ifp.ok()) << ifp.status().ToString();
    auto inf = EvalInflationary(p, db);
    ASSERT_TRUE(inf.ok());
    EXPECT_EQ(ifp->relation, inf->state.relations[0]) << "n=" << n;
    EXPECT_EQ(ifp->stages, inf->num_stages);
  }
}

TEST(IfpTest, TransitiveClosureViaIfp) {
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram(
      "S(X,Y) :- E(X,Y).\nS(X,Y) :- E(X,Z), S(Z,Y).", symbols);
  Rng rng(5);
  const Digraph g = RandomDigraph(5, 0.35, &rng);
  Database db = DbFromGraph(g, symbols);
  auto op = logic::ProgramToIfpOperator(p);
  ASSERT_TRUE(op.ok());
  FoModel model{&db, {}};
  auto ifp = logic::InflationaryFixpointOfFormula(model, *op);
  ASSERT_TRUE(ifp.ok());
  const auto tc = TransitiveClosure(g);
  size_t expected = 0;
  for (size_t u = 0; u < 5; ++u) {
    for (size_t v = 0; v < 5; ++v) {
      if (tc[u][v]) ++expected;
    }
  }
  EXPECT_EQ(ifp->relation.size(), expected);
}

TEST(IfpTest, MultiIdbProgramsRejected) {
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram("A(X) :- E(X,Y).\nB(X) :- E(Y,X).", symbols);
  auto op = logic::ProgramToIfpOperator(p);
  EXPECT_FALSE(op.ok());
  EXPECT_EQ(op.status().code(), StatusCode::kFailedPrecondition);
}

TEST(IfpTest, RoundTripThroughProgramText) {
  // operator(π₁) → program text → parse → inflationary semantics must
  // reproduce π₁'s inflationary semantics.
  auto symbols = std::make_shared<SymbolTable>();
  Program original = MustProgram("T(X) :- E(Y,X), !T(Y).", symbols);
  auto op = logic::ProgramToIfpOperator(original);
  ASSERT_TRUE(op.ok());
  auto text = logic::IfpOperatorToProgramText(*op);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  Program round = MustProgram(*text, symbols);
  for (size_t n : {4u, 6u}) {
    Database db = DbFromGraph(PathGraph(n), symbols);
    auto a = EvalInflationary(original, db);
    auto b = EvalInflationary(round, db);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->state.relations[0], b->state.relations[0]) << *text;
  }
}

TEST(IfpTest, UniversalFormulaRejected) {
  logic::IfpOperator op;
  op.rel_name = "S";
  op.arity = 1;
  op.tuple_vars = {"x0"};
  op.formula = Forall({"y"}, Atom("E", {V("x0"), V("y")}));
  auto text = logic::IfpOperatorToProgramText(op);
  EXPECT_FALSE(text.ok());
  EXPECT_EQ(text.status().code(), StatusCode::kFailedPrecondition);
}

TEST(IfpTest, HandWrittenFormulaMatchesCompiledProgram) {
  // φ(x, S) = ∃y (E(y,x) ∧ S(y)) ∨ ∀-free base case via no-predecessor:
  // "x is reachable from a source": base = ¬∃y E(y,x) is universal, so
  // use the existential variant: S grows from explicit source marks.
  auto symbols = std::make_shared<SymbolTable>();
  logic::IfpOperator op;
  op.rel_name = "S";
  op.arity = 1;
  op.tuple_vars = {"x0"};
  op.formula = Or({Atom("Src", {V("x0")}),
                   Exists({"y"}, And({Atom("E", {V("y"), V("x0")}),
                                      Atom("S", {V("y")})}))});
  auto text = logic::IfpOperatorToProgramText(op);
  ASSERT_TRUE(text.ok());
  Program compiled = MustProgram(*text, symbols);

  Database db = DbFromGraph(PathGraph(5), symbols);
  INFLOG_CHECK(db.AddFact("Src", Tuple{symbols->Intern("1")}).ok());
  FoModel model{&db, {}};
  auto ifp = logic::InflationaryFixpointOfFormula(model, op);
  ASSERT_TRUE(ifp.ok());
  auto inf = EvalInflationary(compiled, db);
  ASSERT_TRUE(inf.ok());
  EXPECT_EQ(ifp->relation, inf->state.relations[0]);
  // Reachable-from-1 on L₅: {1,2,3,4}.
  EXPECT_EQ(ifp->relation.size(), 4u);
}

}  // namespace
}  // namespace inflog
