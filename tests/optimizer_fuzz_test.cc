// Random-program differential fuzzer for the optimizer (ISSUE: magic
// sets + rule inlining). For a few hundred generated workloads, every
// optimizer selection — including the program rewrites — must produce
// set-identical results on the queried predicates, under both
// relational semantics, and stay stable across the {threads × shards ×
// scheduler} execution grid. A third suite replays a generated update
// stream through the incremental path under --optimize=all with the
// recompute oracle armed.
//
// The baseline is --optimize=none with NO declared outputs (every IDB
// relation fully specified); rewritten runs declare the generated
// outputs, so the comparison checks exactly the outputs-as-sets
// contract of src/opt/passes.h.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/core/engine.h"
#include "tests/program_generator.h"
#include "tests/test_util.h"

namespace inflog {
namespace {

using testing::GeneratedProgram;
using testing::GeneratorOptions;
using testing::TuplesOf;

/// Queried-predicate name → sorted tuples (as symbol names).
using QueryResults =
    std::map<std::string, std::vector<std::vector<std::string>>>;

/// One from-scratch evaluation of the workload; returns the queried
/// predicates' relations.
Result<QueryResults> EvalWith(const GeneratedProgram& gen, SemanticsKind kind,
                              const EvalOptions& options) {
  Engine engine;
  INFLOG_RETURN_IF_ERROR(engine.LoadProgramText(gen.program_text));
  INFLOG_RETURN_IF_ERROR(engine.LoadDatabaseText(gen.facts_text));
  INFLOG_ASSIGN_OR_RETURN(const EvalOutcome outcome,
                          engine.Evaluate(kind, options));
  QueryResults out;
  for (const std::string& name : gen.outputs) {
    INFLOG_ASSIGN_OR_RETURN(const Relation* rel,
                            engine.RelationOf(outcome.state(), name));
    out[name] = TuplesOf(*engine.symbols(), *rel);
  }
  return out;
}

std::string Describe(const GeneratedProgram& gen) {
  std::string out = "--- program ---\n" + gen.program_text +
                    "--- facts ---\n" + gen.facts_text + "--- outputs:";
  for (const std::string& name : gen.outputs) out += " " + name;
  return out + "\n";
}

/// The optimizer selections the differential sweep compares against the
/// unoptimized baseline. Exercises each pass alone, the rewrites
/// together, and a rewrite stacked on a plan pass.
const char* const kSelections[] = {
    "all",   "dce",    "reorder",      "share",
    "magic", "inline", "magic,inline", "dce,magic",
};

GeneratorOptions OptionsForSeed(int seed) {
  GeneratorOptions gopt;
  // Mix negation-free and constant-free workloads into the pool:
  // negation-free seeds let magic specialize deeper programs,
  // constant-free seeds make the point-query rule impossible so the
  // rewrite must stay sound on all-free outputs.
  gopt.allow_negation = (seed % 3) != 0;
  if (seed % 5 == 0) gopt.constant_probability = 0;
  return gopt;
}

class OptimizerFuzz : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerFuzz, SelectionsAgreeOnQueriedPredicates) {
  const int seed = GetParam();
  Rng rng(seed * 9176 + 11);
  const GeneratedProgram gen =
      testing::GenerateProgram(&rng, OptionsForSeed(seed));

  for (const SemanticsKind kind :
       {SemanticsKind::kInflationary, SemanticsKind::kStratified}) {
    EvalOptions baseline_options;
    baseline_options.optimizer_passes = OptimizerPasses::None();
    const auto baseline = EvalWith(gen, kind, baseline_options);
    ASSERT_TRUE(baseline.ok())
        << baseline.status().ToString() << "\n" << Describe(gen);

    for (const char* selection : kSelections) {
      const auto passes = ParseOptimizerPasses(selection);
      ASSERT_TRUE(passes.ok()) << selection;
      EvalOptions options;
      options.optimizer_passes = *passes;
      options.output_predicates = gen.outputs;
      const auto got = EvalWith(gen, kind, options);
      ASSERT_TRUE(got.ok()) << got.status().ToString() << "\nselection="
                            << selection << " semantics="
                            << SemanticsKindName(kind) << "\n"
                            << Describe(gen);
      EXPECT_EQ(*got, *baseline)
          << "selection=" << selection
          << " semantics=" << SemanticsKindName(kind) << "\n"
          << Describe(gen);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerFuzz, ::testing::Range(0, 220));

class OptimizerFuzzExecution : public ::testing::TestWithParam<int> {};

// The rewritten programs must stay deterministic across the execution
// grid: parallel threads, sharded relations, every stage scheduler.
TEST_P(OptimizerFuzzExecution, RewriteStableAcrossShardsAndSchedulers) {
  const int seed = GetParam();
  Rng rng(seed * 40503 + 7);
  const GeneratedProgram gen =
      testing::GenerateProgram(&rng, OptionsForSeed(seed));

  for (const SemanticsKind kind :
       {SemanticsKind::kInflationary, SemanticsKind::kStratified}) {
    EvalOptions baseline_options;
    baseline_options.optimizer_passes = OptimizerPasses::None();
    const auto baseline = EvalWith(gen, kind, baseline_options);
    ASSERT_TRUE(baseline.ok())
        << baseline.status().ToString() << "\n" << Describe(gen);

    for (const char* selection : {"all", "magic,inline"}) {
      const auto passes = ParseOptimizerPasses(selection);
      ASSERT_TRUE(passes.ok()) << selection;
      for (const size_t shards : {1u, 2u, 8u}) {
        for (const StageScheduler scheduler :
             {StageScheduler::kStatic, StageScheduler::kStealing,
              StageScheduler::kAuto}) {
          EvalOptions options;
          options.optimizer_passes = *passes;
          options.output_predicates = gen.outputs;
          options.num_threads = 2;
          options.num_shards = shards;
          options.scheduler = scheduler;
          const auto got = EvalWith(gen, kind, options);
          ASSERT_TRUE(got.ok()) << got.status().ToString() << "\n"
                                << Describe(gen);
          EXPECT_EQ(*got, *baseline)
              << "selection=" << selection << " shards=" << shards
              << " scheduler=" << static_cast<int>(scheduler)
              << " semantics=" << SemanticsKindName(kind) << "\n"
              << Describe(gen);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerFuzzExecution,
                         ::testing::Range(0, 40));

class OptimizerFuzzIncremental : public ::testing::TestWithParam<int> {};

// A generated E-fact update stream through the incremental path under
// --optimize=all. Two oracles per update: verify_incremental re-runs the
// session's own evaluation from scratch inside ApplyUpdate, and the
// explicit check below recomputes the queried predicates on a FRESH
// engine with declared outputs — so the maintained (rewrite-inert)
// state is also diffed against the magic/inline-rewritten one.
TEST_P(OptimizerFuzzIncremental, UpdateStreamMatchesRecomputeOracle) {
  const int seed = GetParam();
  Rng rng(seed * 70921 + 3);
  GeneratorOptions gopt = OptionsForSeed(seed);
  gopt.unary_edb = false;  // the update stream only touches E/2
  GeneratedProgram gen = testing::GenerateProgram(&rng, gopt);

  // Track the exact E rows so inserts add absent facts, deletes remove
  // present ones, and the oracle can rebuild the database as text.
  std::set<std::pair<int, int>> edges;
  while (edges.size() < 12) {
    edges.emplace(rng.Uniform(gopt.domain_size),
                  rng.Uniform(gopt.domain_size));
  }
  auto facts_text = [&] {
    std::string text;
    for (const auto& [u, v] : edges) {
      text += "E(c" + std::to_string(u) + ",c" + std::to_string(v) + ").\n";
    }
    return text;
  };
  gen.facts_text = facts_text();

  Engine engine;
  ASSERT_TRUE(engine.LoadProgramText(gen.program_text).ok())
      << Describe(gen);
  // A rare roll can produce a program that never references E; there is
  // nothing to update then.
  if (!engine.program().value()->FindPredicate("E").ok()) {
    GTEST_SKIP() << "generated program does not reference E";
  }
  ASSERT_TRUE(engine.LoadDatabaseText(gen.facts_text).ok());

  EvalOptions session_options;
  session_options.optimizer_passes = OptimizerPasses::All();
  session_options.verify_incremental = true;
  ASSERT_TRUE(
      engine.BeginIncremental(SemanticsKind::kStratified, session_options)
          .ok())
      << Describe(gen);

  auto fact = [&](const std::pair<int, int>& e) {
    Tuple t{engine.symbols()->Intern("c" + std::to_string(e.first)),
            engine.symbols()->Intern("c" + std::to_string(e.second))};
    return std::make_pair(std::string("E"), std::move(t));
  };
  for (int step = 0; step < 6; ++step) {
    std::vector<std::pair<std::string, Tuple>> inserts;
    std::vector<std::pair<std::string, Tuple>> deletes;
    // Deletes are drawn BEFORE the inserts land in `edges`: the engine
    // nets a same-batch insert+delete of one tuple to "insert wins",
    // which would diverge from this tracking set.
    const int num_deletes = static_cast<int>(rng.Uniform(3));
    for (int i = 0; i < num_deletes && !edges.empty(); ++i) {
      auto it = edges.begin();
      std::advance(it, rng.Uniform(edges.size()));
      deletes.push_back(fact(*it));
      edges.erase(it);
    }
    const int num_inserts = 1 + static_cast<int>(rng.Uniform(3));
    for (int i = 0; i < num_inserts; ++i) {
      const std::pair<int, int> e{rng.Uniform(gopt.domain_size),
                                  rng.Uniform(gopt.domain_size)};
      if (edges.insert(e).second) inserts.push_back(fact(e));
    }
    const auto update = engine.ApplyUpdate(std::move(inserts),
                                           std::move(deletes));
    ASSERT_TRUE(update.ok())
        << update.status().ToString() << "\nstep=" << step << "\n"
        << Describe(gen);

    // Recompute oracle with the rewrites ACTIVE on the mutated database.
    gen.facts_text = facts_text();
    EvalOptions rewrite_options;
    rewrite_options.optimizer_passes = OptimizerPasses::All();
    rewrite_options.output_predicates = gen.outputs;
    const auto rewritten =
        EvalWith(gen, SemanticsKind::kStratified, rewrite_options);
    ASSERT_TRUE(rewritten.ok())
        << rewritten.status().ToString() << "\nstep=" << step << "\n"
        << Describe(gen);
    const auto state = engine.IncrementalState();
    ASSERT_TRUE(state.ok());
    const Program& program = *engine.program().value();
    for (const std::string& name : gen.outputs) {
      EXPECT_EQ(TuplesOf(*engine.symbols(),
                         testing::IdbRelation(program, **state, name)),
                rewritten->at(name))
          << "step=" << step << " predicate=" << name << "\n"
          << Describe(gen);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerFuzzIncremental,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace inflog
