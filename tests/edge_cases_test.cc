// Edge cases and cross-module properties: empty databases, universe
// handling, program constants, convergence invariants, and enumeration
// counts — failure modes a downstream user would hit first.

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/base/strings.h"
#include "src/core/engine.h"
#include "src/eval/theta.h"
#include "src/fixpoint/analysis.h"
#include "src/sat/solver.h"
#include "tests/test_util.h"

namespace inflog {
namespace {

using testing::DbFromGraph;
using testing::MustProgram;

TEST(EdgeCaseTest, EmptyProgramText) {
  auto p = ParseProgram("");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->rules().empty());
  auto q = ParseProgram("% only comments\n// and more\n");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->rules().empty());
}

TEST(EdgeCaseTest, EmptyDatabaseEmptyUniverse) {
  // No facts, no universe: Θ^∞ is empty, trivially converged.
  Engine engine;
  ASSERT_TRUE(engine.LoadProgramText("T(X) :- !T(X).").ok());
  auto result = engine.Inflationary();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->state.TotalTuples(), 0u);
  EXPECT_TRUE(result->converged);
  // And the unique fixpoint is the empty one.
  auto analyzer = engine.MakeAnalyzer();
  ASSERT_TRUE(analyzer.ok());
  auto unique = analyzer->UniqueFixpoint();
  ASSERT_TRUE(unique.ok());
  EXPECT_EQ(*unique, UniqueStatus::kUnique);
}

TEST(EdgeCaseTest, UniverseWithoutFacts) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgramText("T(X) :- !T(X).").ok());
  ASSERT_TRUE(engine.LoadDatabaseText("@universe a b.").ok());
  // T(x) ← ¬T(x) on a 2-element universe: Θ^∞ = A.
  auto result = engine.Inflationary();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->state.TotalTuples(), 2u);
  // ...and (π, D) has no fixpoint (pointwise toggle).
  auto analyzer = engine.MakeAnalyzer();
  ASSERT_TRUE(analyzer.ok());
  auto has = analyzer->HasFixpoint();
  ASSERT_TRUE(has.ok());
  EXPECT_FALSE(*has);
}

TEST(EdgeCaseTest, ProgramConstantsJoinTheUniverse) {
  // The constant c42 appears only in the program; evaluation must range
  // over it (Section 2's universe plus program constants).
  Engine engine;
  ASSERT_TRUE(engine.LoadProgramText("P(X) :- X = c42.").ok());
  ASSERT_TRUE(engine.LoadDatabaseText("@universe a.").ok());
  auto result = engine.Inflationary();
  ASSERT_TRUE(result.ok());
  auto p = engine.RelationOf(result->state, "P");
  ASSERT_TRUE(p.ok());
  ASSERT_EQ((*p)->size(), 1u);
  EXPECT_EQ(engine.symbols()->Name((*p)->Row(0)[0]), "c42");
}

TEST(EdgeCaseTest, FactsOnlyProgram) {
  // Bodyless ground rules behave like IDB facts under every semantics.
  Engine engine;
  ASSERT_TRUE(engine.LoadProgramText("F(a,b).\nF(b,c).").ok());
  auto inf = engine.Inflationary();
  ASSERT_TRUE(inf.ok());
  EXPECT_EQ(inf->state.TotalTuples(), 2u);
  EXPECT_EQ(inf->num_stages, 1u);
  auto analyzer = engine.MakeAnalyzer();
  ASSERT_TRUE(analyzer.ok());
  auto unique = analyzer->UniqueFixpoint();
  ASSERT_TRUE(unique.ok());
  EXPECT_EQ(*unique, UniqueStatus::kUnique);
  auto wf = engine.WellFounded();
  ASSERT_TRUE(wf.ok());
  EXPECT_TRUE(wf->total);
  EXPECT_EQ(wf->true_state.TotalTuples(), 2u);
}

TEST(EdgeCaseTest, SelfLoopGraph) {
  Digraph g(2);
  g.AddEdge(0, 0);
  g.AddEdge(0, 1);
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram("T(X) :- E(Y,X), !T(Y).", symbols);
  Database db = DbFromGraph(g, symbols);
  // T(0) ← E(0,0) ∧ ¬T(0): vertex 0 toggles itself → no fixpoint.
  auto analyzer = FixpointAnalyzer::Create(&p, &db);
  ASSERT_TRUE(analyzer.ok());
  auto has = analyzer->HasFixpoint();
  ASSERT_TRUE(has.ok());
  EXPECT_FALSE(*has);
}

TEST(EdgeCaseTest, MaxStagesZeroMeansUnbounded) {
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram(
      "S(X,Y) :- E(X,Y).\nS(X,Y) :- E(X,Z), S(Z,Y).", symbols);
  Database db = DbFromGraph(PathGraph(20), symbols);
  InflationaryOptions opts;
  opts.max_stages = 0;
  auto result = EvalInflationary(p, db, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  EXPECT_EQ(result->num_stages, 19u);
}

TEST(EdgeCaseTest, ArityZeroEverywhere) {
  Engine engine;
  ASSERT_TRUE(engine
                  .LoadProgramText(
                      "Go :- Start, !Stop.\n"
                      "Done :- Go.\n")
                  .ok());
  ASSERT_TRUE(engine.LoadDatabaseText("Start.").ok());
  EvalContextOptions ctx_opts;
  InflationaryOptions opts;
  opts.context.allow_missing_edb = true;  // Stop has no facts
  auto result = engine.Inflationary(opts);
  ASSERT_TRUE(result.ok());
  auto go = engine.RelationOf(result->state, "Go");
  auto done = engine.RelationOf(result->state, "Done");
  ASSERT_TRUE(go.ok() && done.ok());
  EXPECT_EQ((*go)->size(), 1u);
  EXPECT_EQ((*done)->size(), 1u);
}

TEST(EdgeCaseTest, LongChainDeepStages) {
  // 400 stages of inflationary iteration: no stack or bookkeeping issues.
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram("R(X) :- S0(X).\nR(Y) :- E(X,Y), R(X).", symbols);
  Database db = DbFromGraph(PathGraph(400), symbols);
  ASSERT_TRUE(db.AddFact("S0", Tuple{symbols->Intern("0")}).ok());
  auto result = EvalInflationary(p, db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->state.relations[0].size(), 400u);
  EXPECT_EQ(result->num_stages, 400u);
}

// --- Cross-module properties on random programs. ---

class InflationaryInvariants : public ::testing::TestWithParam<int> {};

TEST_P(InflationaryInvariants, FinalStateIsInductiveFixpoint) {
  // Θ(S^∞) ⊆ S^∞ (the inflationary operator has stabilized), and on
  // positive programs S^∞ IS the least fixpoint found by the analyzer.
  const int seed = GetParam();
  Rng rng(seed * 83 + 19);
  const Digraph g = RandomDigraph(4, 0.4, &rng);
  const bool positive = seed % 2 == 0;
  const std::string text =
      positive ? "S(X,Y) :- E(X,Y).\nS(X,Y) :- E(X,Z), S(Z,Y).\n"
               : "S(X,Y) :- E(X,Y), !S(Y,X).\n"
                 "S(X,Y) :- E(X,Z), S(Z,Y), !S(Y,X).\n";
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram(text, symbols);
  Database db = DbFromGraph(g, symbols);
  auto inf = EvalInflationary(p, db);
  ASSERT_TRUE(inf.ok());
  auto ctx = EvalContext::Create(p, db);
  ASSERT_TRUE(ctx.ok());
  ThetaOperator theta(&*ctx);
  EXPECT_TRUE(theta.Apply(inf->state).IsSubsetOf(inf->state))
      << "Θ̂ not stabilized";
  if (positive) {
    auto analyzer = FixpointAnalyzer::Create(&p, &db);
    ASSERT_TRUE(analyzer.ok());
    auto least = analyzer->LeastFixpoint();
    ASSERT_TRUE(least.ok());
    ASSERT_TRUE(least->has_least);
    EXPECT_EQ(least->intersection, inf->state);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InflationaryInvariants,
                         ::testing::Range(0, 12));

TEST(EnumerationCountTest, SolverEnumerationMatchesBruteForceModelCount) {
  for (int seed : {3, 7, 11, 19}) {
    Rng rng(seed);
    sat::Cnf cnf;
    for (int i = 0; i < 10; ++i) cnf.NewVar();
    for (int c = 0; c < 18; ++c) {
      sat::Clause clause;
      while (clause.size() < 3) {
        const sat::Var v = static_cast<sat::Var>(rng.Uniform(10));
        bool dup = false;
        for (const sat::Lit& l : clause) dup |= l.var() == v;
        if (!dup) clause.push_back(sat::Lit(v, rng.Bernoulli(0.5)));
      }
      cnf.AddClause(clause);
    }
    uint64_t brute = 0;
    std::vector<bool> assignment(10);
    for (uint32_t mask = 0; mask < 1024; ++mask) {
      for (int v = 0; v < 10; ++v) assignment[v] = (mask >> v) & 1;
      if (cnf.IsSatisfiedBy(assignment)) ++brute;
    }
    sat::Solver solver;
    solver.AddCnf(cnf);
    uint64_t enumerated = 0;
    while (solver.Solve() == sat::SolveResult::kSat) {
      ++enumerated;
      ASSERT_LE(enumerated, 1024u);
      sat::Clause block;
      for (sat::Var v = 0; v < 10; ++v) {
        block.push_back(solver.ModelValue(v) ? sat::Neg(v) : sat::Pos(v));
      }
      if (!solver.AddClause(block)) break;
    }
    EXPECT_EQ(enumerated, brute) << "seed " << seed;
  }
}

TEST(GroundBodySharingTest, ToggleSharesBodiesAcrossHeads) {
  // The |A|³ toggle instantiations intern only |A|² distinct bodies.
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram("T(Z) :- !Q(U), !T(W).\nQ(X) :- E(X,Y).",
                          symbols);
  Database db = DbFromGraph(PathGraph(5), symbols);
  auto analyzer = FixpointAnalyzer::Create(&p, &db);
  ASSERT_TRUE(analyzer.ok());
  const GroundProgram& ground = analyzer->ground();
  // 125 toggle rules + 4 Q rules; bodies: 25 toggle + few Q bodies.
  EXPECT_EQ(ground.rules.size(), 125u + 4u);
  EXPECT_LE(ground.bodies.size(), 25u + 5u);
  // And the completion introduces at most one Tseitin var per body.
  EXPECT_LE(analyzer->encoding().num_body_vars, ground.bodies.size());
}

TEST(StatusPropagationTest, GroundingLimitSurfacesThroughAnalyzer) {
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram("T(Z) :- !Q(U), !T(W).\nQ(X) :- E(X,Y).",
                          symbols);
  Database db = DbFromGraph(PathGraph(30), symbols);
  AnalyzeOptions opts;
  opts.grounder.max_ground_rules = 100;
  auto analyzer = FixpointAnalyzer::Create(&p, &db, opts);
  EXPECT_FALSE(analyzer.ok());
  EXPECT_EQ(analyzer.status().code(), StatusCode::kResourceExhausted);
}

TEST(SolverBudgetTest, BudgetSurfacesAsResourceExhausted) {
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram("T(X) :- E(Y,X), !T(Y).", symbols);
  Database db = DbFromGraph(DisjointCycles(6, 4), symbols);
  AnalyzeOptions opts;
  opts.solver.max_conflicts = 1;
  auto analyzer = FixpointAnalyzer::Create(&p, &db, opts);
  ASSERT_TRUE(analyzer.ok());
  // Enumerating 64 fixpoints under a 1-conflict budget must give up
  // (rather than silently returning a partial answer).
  auto fps = analyzer->EnumerateFixpoints();
  EXPECT_FALSE(fps.ok());
  EXPECT_EQ(fps.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace inflog
