// Robustness and reference-model property tests:
//   * Relation against a std::set reference model under random operation
//     sequences;
//   * the parser against mutated and truncated inputs (must return error
//     Statuses, never crash, and valid prefixes must keep parsing);
//   * solver determinism across repeated runs.

#include <gtest/gtest.h>

#include <set>

#include "src/ast/parser.h"
#include "src/base/rng.h"
#include "src/base/strings.h"
#include "src/eval/inflationary.h"
#include "src/relation/relation.h"
#include "src/sat/solver.h"
#include "tests/test_util.h"

namespace inflog {
namespace {

class RelationModelCheck : public ::testing::TestWithParam<int> {};

TEST_P(RelationModelCheck, MatchesSetSemantics) {
  Rng rng(GetParam() * 127 + 1);
  const size_t arity = 1 + rng.Uniform(3);
  Relation relation(arity);
  std::set<Tuple> reference;
  for (int op = 0; op < 500; ++op) {
    Tuple t(arity);
    for (size_t i = 0; i < arity; ++i) {
      t[i] = static_cast<Value>(rng.Uniform(6));
    }
    switch (rng.Uniform(3)) {
      case 0: {
        const bool inserted_rel = relation.Insert(t);
        const bool inserted_ref = reference.insert(t).second;
        EXPECT_EQ(inserted_rel, inserted_ref);
        break;
      }
      case 1:
        EXPECT_EQ(relation.Contains(t), reference.count(t) > 0);
        break;
      default: {
        const int64_t row = relation.Find(t);
        EXPECT_EQ(row >= 0, reference.count(t) > 0);
        if (row >= 0) {
          TupleView found = relation.Row(row);
          EXPECT_TRUE(std::equal(found.begin(), found.end(), t.begin()));
        }
        break;
      }
    }
    EXPECT_EQ(relation.size(), reference.size());
  }
  // Canonical order matches the set's order.
  auto sorted = relation.SortedTuples();
  EXPECT_TRUE(std::equal(sorted.begin(), sorted.end(), reference.begin()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelationModelCheck, ::testing::Range(0, 8));

class ParserRobustness : public ::testing::TestWithParam<int> {};

TEST_P(ParserRobustness, MutatedInputsFailGracefully) {
  // Mutate a valid program by deleting, duplicating, or swapping
  // characters; the parser must return ok or an error Status — never
  // crash, hang, or CHECK-fail.
  const std::string base =
      "S1(X,Y) :- E(X,Y).\n"
      "S1(X,Y) :- E(X,Z), S1(Z,Y).\n"
      "S3(X,Y,Xs,Ys) :- E(X,Y), !S2(Xs,Ys), X != Ys.\n";
  Rng rng(GetParam() * 997 + 31);
  for (int trial = 0; trial < 200; ++trial) {
    std::string text = base;
    const int mutations = 1 + static_cast<int>(rng.Uniform(4));
    for (int m = 0; m < mutations; ++m) {
      if (text.empty()) break;
      const size_t pos = rng.Uniform(text.size());
      switch (rng.Uniform(3)) {
        case 0:
          text.erase(pos, 1);
          break;
        case 1:
          text.insert(pos, 1, text[rng.Uniform(text.size())]);
          break;
        default:
          text[pos] = "(),.:-!=XYZabc01"[rng.Uniform(16)];
          break;
      }
    }
    auto result = ParseProgram(text);
    if (result.ok()) {
      // A successfully parsed mutant must round-trip through the printer.
      const std::string printed = result->ToString();
      auto reparsed = ParseProgram(printed, result->shared_symbols());
      EXPECT_TRUE(reparsed.ok()) << "print/parse divergence on:\n" << text;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustness, ::testing::Range(0, 6));

TEST(ParserRobustnessTest, TruncationsOfValidProgram) {
  const std::string base =
      "T(X) :- E(Y,X), !T(Y).\nS(X,Y) :- E(X,Y), X != Y.\n";
  for (size_t len = 0; len <= base.size(); ++len) {
    auto result = ParseProgram(base.substr(0, len));
    // Must terminate with a definite answer at every prefix.
    if (result.ok()) {
      EXPECT_LE(result->rules().size(), 2u);
    } else {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST(SolverDeterminismTest, RepeatedRunsAgree) {
  // Same formula, fresh solvers: identical verdicts and (since the
  // heuristics are deterministic) identical models.
  Rng rng(2024);
  sat::Cnf cnf;
  for (int i = 0; i < 12; ++i) cnf.NewVar();
  for (int c = 0; c < 40; ++c) {
    sat::Clause clause;
    while (clause.size() < 3) {
      const sat::Var v = static_cast<sat::Var>(rng.Uniform(12));
      bool dup = false;
      for (const sat::Lit& l : clause) dup |= l.var() == v;
      if (!dup) clause.push_back(sat::Lit(v, rng.Bernoulli(0.5)));
    }
    cnf.AddClause(clause);
  }
  sat::Solver a, b;
  a.AddCnf(cnf);
  b.AddCnf(cnf);
  const auto ra = a.Solve();
  const auto rb = b.Solve();
  ASSERT_EQ(ra, rb);
  if (ra == sat::SolveResult::kSat) {
    EXPECT_EQ(a.Model(), b.Model());
  }
}

TEST(EvaluationDeterminismTest, RepeatedRunsProduceIdenticalStages) {
  Rng rng(99);
  const Digraph g = RandomDigraph(6, 0.3, &rng);
  auto symbols = std::make_shared<SymbolTable>();
  Program p = testing::MustProgram(
      "S(X,Y) :- E(X,Y).\nS(X,Y) :- E(X,Z), S(Z,Y).\n"
      "T(X) :- E(Y,X), !T(Y).\n",
      symbols);
  Database db = testing::DbFromGraph(g, symbols);
  auto first = EvalInflationary(p, db);
  ASSERT_TRUE(first.ok());
  for (int run = 0; run < 3; ++run) {
    auto again = EvalInflationary(p, db);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->state, first->state);
    EXPECT_EQ(again->stage_sizes, first->stage_sizes);
  }
}

}  // namespace
}  // namespace inflog
