// Cross-semantics regression tests for the unified fixpoint core.
//
// All four semantics now parameterize the same FixpointDriver, so their
// agreement on the program classes where they provably coincide is the
// regression surface for the shared machinery:
//
//   * positive DATALOG: inflationary = least fixpoint = stratified =
//     well-founded (total), and the unique stable model;
//   * semipositive DATALOG¬ (negation only on EDB relations): same —
//     negated literals are constant along the stages, so the inflationary
//     iteration computes the stratified model;
//   * stratifiable DATALOG¬: stratified = well-founded true part, and the
//     well-founded model is total (the inflationary semantics may
//     legitimately differ here — Proposition 2's distance program reads
//     its meaning off that very divergence, so it is NOT asserted).

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/core/engine.h"
#include "src/graphs/digraph.h"
#include "tests/test_util.h"

namespace inflog {
namespace {

/// Engine loaded with a random digraph as E(u,v), every vertex as V(x),
/// a random seed set S, and a random blocked set B.
void LoadRandomGraphDb(Engine* engine, size_t n, uint64_t seed) {
  Rng rng(seed);
  const Digraph g = RandomDigraph(n, 2.0 / n, &rng);
  GraphToDatabase(g, "E", engine->mutable_database());
  for (size_t v = 0; v < n; ++v) {
    const std::string name = std::to_string(v);
    ASSERT_TRUE(engine->mutable_database()->AddFactNamed("V", {name}).ok());
    if (rng.Bernoulli(0.3)) {
      ASSERT_TRUE(engine->mutable_database()->AddFactNamed("S", {name}).ok());
    }
    if (rng.Bernoulli(0.2)) {
      ASSERT_TRUE(engine->mutable_database()->AddFactNamed("B", {name}).ok());
    }
  }
  // Every EDB relation the programs mention must exist even when the
  // random draws left it empty.
  ASSERT_TRUE(engine->mutable_database()->DeclareRelation("S", 1).ok());
  ASSERT_TRUE(engine->mutable_database()->DeclareRelation("B", 1).ok());
}

class CrossSemantics : public ::testing::TestWithParam<int> {};

TEST_P(CrossSemantics, PositiveProgramAllFourAgree) {
  Engine engine;
  ASSERT_TRUE(engine
                  .LoadProgramText(
                      "R(X) :- S(X).\n"
                      "R(Y) :- R(X), E(X,Y).\n"
                      "P(X,Y) :- R(X), E(X,Y).\n")
                  .ok());
  LoadRandomGraphDb(&engine, 12, 1000 + GetParam());

  auto inflationary = engine.Inflationary();
  ASSERT_TRUE(inflationary.ok());
  auto least = engine.Evaluate(SemanticsKind::kInflationary);
  ASSERT_TRUE(least.ok());
  auto stratified = engine.Stratified();
  ASSERT_TRUE(stratified.ok());
  auto wellfounded = engine.WellFounded();
  ASSERT_TRUE(wellfounded.ok());
  auto stable = engine.StableModels();
  ASSERT_TRUE(stable.ok());

  EXPECT_EQ(inflationary->state, stratified->state);
  EXPECT_TRUE(wellfounded->total);
  EXPECT_EQ(inflationary->state, wellfounded->true_state);
  ASSERT_EQ(stable->models.size(), 1u);
  EXPECT_EQ(inflationary->state, stable->models.front());
}

TEST_P(CrossSemantics, SemipositiveProgramAllFourAgree) {
  Engine engine;
  // Negation only on EDB relations: reachability from non-blocked seeds
  // plus the asymmetric-edge pairs.
  ASSERT_TRUE(engine
                  .LoadProgramText(
                      "R(X) :- S(X), !B(X).\n"
                      "R(Y) :- R(X), E(X,Y), !B(Y).\n"
                      "A(X,Y) :- E(X,Y), !E(Y,X).\n")
                  .ok());
  LoadRandomGraphDb(&engine, 12, 2000 + GetParam());

  auto inflationary = engine.Inflationary();
  ASSERT_TRUE(inflationary.ok());
  auto stratified = engine.Stratified();
  ASSERT_TRUE(stratified.ok());
  auto wellfounded = engine.WellFounded();
  ASSERT_TRUE(wellfounded.ok());
  auto stable = engine.StableModels();
  ASSERT_TRUE(stable.ok());

  EXPECT_EQ(inflationary->state, stratified->state)
      << "inflationary:\n"
      << testing::CanonState(**engine.program(), inflationary->state)
      << "stratified:\n"
      << testing::CanonState(**engine.program(), stratified->state);
  EXPECT_TRUE(wellfounded->total);
  EXPECT_EQ(inflationary->state, wellfounded->true_state);
  ASSERT_EQ(stable->models.size(), 1u);
  EXPECT_EQ(inflationary->state, stable->models.front());
}

TEST_P(CrossSemantics, StratifiableProgramStratifiedEqualsWellFounded) {
  Engine engine;
  // Two strata with IDB negation across them: unreachable vertices and
  // the edges leaving them. The well-founded model of a stratifiable
  // program is total and equals its stratified model.
  ASSERT_TRUE(engine
                  .LoadProgramText(
                      "R(X) :- S(X).\n"
                      "R(Y) :- R(X), E(X,Y).\n"
                      "U(X) :- V(X), !R(X).\n"
                      "D(X,Y) :- E(X,Y), U(X).\n")
                  .ok());
  LoadRandomGraphDb(&engine, 10, 3000 + GetParam());

  auto stratified = engine.Stratified();
  ASSERT_TRUE(stratified.ok());
  auto wellfounded = engine.WellFounded();
  ASSERT_TRUE(wellfounded.ok());

  EXPECT_TRUE(wellfounded->total);
  EXPECT_EQ(stratified->state, wellfounded->true_state)
      << "stratified:\n"
      << testing::CanonState(**engine.program(), stratified->state)
      << "well-founded true part:\n"
      << testing::CanonState(**engine.program(), wellfounded->true_state);
  // And the stratified model is the unique stable model.
  auto stable = engine.StableModels();
  ASSERT_TRUE(stable.ok());
  ASSERT_EQ(stable->models.size(), 1u);
  EXPECT_EQ(stratified->state, stable->models.front());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossSemantics, ::testing::Range(0, 8));

}  // namespace
}  // namespace inflog
