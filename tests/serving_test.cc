// Tests for the serving layer (src/serve/): query parsing and canonical
// cache keys, point/join evaluation against sealed snapshots, epoch
// publication with copy reuse, the delta-invalidated query cache, update
// coalescing, periodic compaction, the Engine serving API, and the
// snapshot-isolation sweep — N reader threads querying pinned snapshots
// while a writer applies an update stream, every reader answer
// cross-checked against a from-scratch evaluation of its pinned epoch,
// across {1,2,8} shards x 3 schedulers (the configuration the CI TSan
// job replays under the sanitizer).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/ast/parser.h"
#include "src/core/engine.h"
#include "src/eval/stratified.h"
#include "src/serve/cache.h"
#include "src/serve/query.h"
#include "src/serve/serving.h"
#include "src/serve/snapshot.h"
#include "tests/test_util.h"

namespace inflog {
namespace {

// Two independent strata: T depends on E only, U on S only — so updates
// to one side must leave the other side's sealed relations and cache
// entries untouched.
constexpr std::string_view kTwoIslandProgram = R"(
T(X,Y) :- E(X,Y).
T(X,Z) :- T(X,Y), E(Y,Z).
U(X) :- S(X).
)";
constexpr std::string_view kTwoIslandFacts =
    "E(1,2). E(2,3). E(3,4). S(7). S(8).";

class ServingTest : public ::testing::Test {
 protected:
  void Load(std::string_view program, std::string_view facts) {
    engine_ = std::make_unique<Engine>();
    ASSERT_TRUE(engine_->LoadProgramText(program).ok());
    ASSERT_TRUE(engine_->LoadDatabaseText(facts).ok());
  }

  void Begin(SemanticsKind kind = SemanticsKind::kStratified,
             const serve::ServingTuning& tuning = {}) {
    EvalOptions options;
    options.serving = tuning;
    auto s = engine_->BeginServing(kind, options);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  serve::ServingSession* Session() {
    auto serving = engine_->serving();
    INFLOG_CHECK(serving.ok());
    return *serving;
  }

  Value V(const std::string& name) {
    return engine_->symbols()->Intern(name);
  }

  std::pair<std::string, Tuple> Fact(std::string rel,
                                     const std::vector<std::string>& args) {
    Tuple t;
    for (const std::string& a : args) t.push_back(V(a));
    return {std::move(rel), std::move(t)};
  }

  /// Applies one batch of named-constant inserts/deletes.
  void Update(const std::vector<std::pair<std::string, Tuple>>& inserts,
              const std::vector<std::pair<std::string, Tuple>>& deletes) {
    UpdateBatch batch;
    batch.inserts = inserts;
    batch.deletes = deletes;
    auto result = engine_->ApplyUpdate(batch);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }

  /// The rendered answer of `line` against the current epoch.
  std::string Answer(const std::string& line) {
    auto outcome = engine_->Query(line);
    INFLOG_CHECK(outcome.ok()) << outcome.status().ToString();
    return outcome->answer.rendered;
  }

  std::unique_ptr<Engine> engine_;
};

TEST_F(ServingTest, ParseQueryCanonicalKey) {
  SymbolTable symbols;
  symbols.Intern("1");
  auto q = serve::ParseServeQuery("?T(X,Y), E(Y,Z)", symbols);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->key, "T($0,$1),E($1,$2)");
  EXPECT_EQ(q->support, (std::vector<std::string>{"E", "T"}));
  EXPECT_EQ(q->output_names, (std::vector<std::string>{"X", "Y", "Z"}));
  EXPECT_FALSE(q->ground());

  // Alpha-equivalent spelling shares the key.
  auto q2 = serve::ParseServeQuery("? T(A,B) , E(B,C) ", symbols);
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->key, q->key);

  // `_` stays `_` in the key (it is not an output) and repeats are fresh.
  auto q3 = serve::ParseServeQuery("?T(1,_), T(_,X)", symbols);
  ASSERT_TRUE(q3.ok());
  EXPECT_EQ(q3->key, "T(1,_),T(_,$0)");
  EXPECT_EQ(q3->output_names, (std::vector<std::string>{"X"}));
  EXPECT_EQ(q3->support, (std::vector<std::string>{"T"}));

  auto ground = serve::ParseServeQuery("?E(1,1)", symbols);
  ASSERT_TRUE(ground.ok());
  EXPECT_TRUE(ground->ground());
}

TEST_F(ServingTest, ParseQueryErrors) {
  SymbolTable symbols;
  EXPECT_FALSE(serve::ParseServeQuery("T(X)", symbols).ok());  // no '?'
  EXPECT_FALSE(serve::ParseServeQuery("?", symbols).ok());
  EXPECT_FALSE(serve::ParseServeQuery("?T", symbols).ok());     // no '('
  EXPECT_FALSE(serve::ParseServeQuery("?T(X", symbols).ok());   // open
  EXPECT_FALSE(serve::ParseServeQuery("?T(X,)", symbols).ok()); // empty term
  EXPECT_FALSE(serve::ParseServeQuery("?T(X) garbage", symbols).ok());
  EXPECT_FALSE(serve::ParseServeQuery("?T(X),", symbols).ok());
  // Trailing comments are fine.
  EXPECT_TRUE(serve::ParseServeQuery("?T(X)  # trailing", symbols).ok());
}

TEST_F(ServingTest, ServingGroundAndJoinQueries) {
  Load(kTwoIslandProgram, kTwoIslandFacts);
  Begin();
  EXPECT_EQ(Answer("?E(1,2)"), "true");
  EXPECT_EQ(Answer("?E(2,1)"), "false");
  EXPECT_EQ(Answer("?T(1,4)"), "true");
  // A constant the symbol table has never seen matches nothing.
  EXPECT_EQ(Answer("?E(99,98)"), "false");
  EXPECT_EQ(Answer("?T(1,X)"), "{(2), (3), (4)}");
  EXPECT_EQ(Answer("?U(X)"), "{(7), (8)}");
  EXPECT_EQ(Answer("?T(X,_)"), "{(1), (2), (3)}");
  EXPECT_EQ(Answer("?E(X,Y), E(Y,Z)"), "{(1,2,3), (2,3,4)}");
  // Repeated variables constrain within and across atoms.
  EXPECT_EQ(Answer("?T(X,X)"), "{}");
}

TEST_F(ServingTest, ServingQueryMatchesBatchRendering) {
  // The serve rendering of a whole IDB predicate must be byte-identical
  // to the batch evaluator's relation printout — the CI smoke job diffs
  // exactly this.
  Load(kTwoIslandProgram, kTwoIslandFacts);
  Begin();
  auto outcome = engine_->Evaluate(SemanticsKind::kStratified);
  ASSERT_TRUE(outcome.ok());
  auto program = engine_->program();
  ASSERT_TRUE(program.ok());
  for (const std::string name : {"T", "U"}) {
    auto rel = engine_->RelationOf(outcome->state(), name);
    ASSERT_TRUE(rel.ok());
    const std::string arity2 = "?" + name + "(X,Y)";
    const std::string arity1 = "?" + name + "(X)";
    const std::string query = (*rel)->arity() == 2 ? arity2 : arity1;
    EXPECT_EQ(Answer(query), (*rel)->ToString(*engine_->symbols()));
  }
}

TEST_F(ServingTest, ServingQueryErrors) {
  Load(kTwoIslandProgram, kTwoIslandFacts);
  Begin();
  auto unknown = engine_->Query("?Nope(X)");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
  auto arity = engine_->Query("?E(X)");
  ASSERT_FALSE(arity.ok());
  EXPECT_EQ(arity.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ServingTest, ServingSnapshotCopyReuse) {
  Load(kTwoIslandProgram, kTwoIslandFacts);
  Begin();
  auto before = engine_->Open();
  ASSERT_TRUE(before.ok());
  Update({Fact("E", {"4", "5"})}, {});
  auto after = engine_->Open();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*before)->epoch() + 1, (*after)->epoch());
  // The untouched island is shared by pointer; the touched one is not.
  EXPECT_EQ((*before)->edb().at("S").get(), (*after)->edb().at("S").get());
  EXPECT_NE((*before)->edb().at("E").get(), (*after)->edb().at("E").get());
  auto program = engine_->program();
  ASSERT_TRUE(program.ok());
  auto t_before = (*before)->Find(**program, "T");
  auto t_after = (*after)->Find(**program, "T");
  auto u_before = (*before)->Find(**program, "U");
  auto u_after = (*after)->Find(**program, "U");
  ASSERT_TRUE(t_before.ok() && t_after.ok() && u_before.ok() &&
              u_after.ok());
  EXPECT_EQ(*u_before, *u_after);
  EXPECT_NE(*t_before, *t_after);
}

TEST_F(ServingTest, ServingCacheHitsOnRepeatedQuery) {
  Load(kTwoIslandProgram, kTwoIslandFacts);
  Begin();
  const std::string first = Answer("?T(1,X)");
  const std::string second = Answer("?T(1,X)");
  const std::string alpha = Answer("?T(1,Q)");  // same canonical key
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, alpha);
  const EvalStats stats = Session()->stats();
  EXPECT_EQ(stats.cache_hits, 2u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.serve_queries, 3u);
}

TEST_F(ServingTest, ServingCachePreciseInvalidation) {
  Load(kTwoIslandProgram, kTwoIslandFacts);
  Begin();
  Answer("?U(X)");    // support {U}
  Answer("?T(1,X)");  // support {T}
  Answer("?S(X)");    // support {S}
  // Touch the E/T island only.
  Update({Fact("E", {"4", "5"})}, {});
  const EvalStats before = Session()->stats();
  // The T entry died; the U and S entries survived the epoch bump.
  EXPECT_EQ(before.cache_invalidations, 1u);
  EXPECT_EQ(Answer("?U(X)"), "{(7), (8)}");
  EXPECT_EQ(Answer("?S(X)"), "{(7), (8)}");
  EXPECT_EQ(Answer("?T(1,X)"), "{(2), (3), (4), (5)}");
  const EvalStats after = Session()->stats();
  EXPECT_EQ(after.cache_hits, before.cache_hits + 2);
  EXPECT_EQ(after.cache_invalidations, 1u);
}

TEST_F(ServingTest, ServingCacheDisabled) {
  Load(kTwoIslandProgram, kTwoIslandFacts);
  serve::ServingTuning tuning;
  tuning.cache = false;
  Begin(SemanticsKind::kStratified, tuning);
  const std::string first = Answer("?T(1,X)");
  EXPECT_EQ(first, Answer("?T(1,X)"));
  const EvalStats stats = Session()->stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
  EXPECT_EQ(stats.serve_queries, 2u);
}

TEST_F(ServingTest, ServingCacheLateInsertCannotResurrect) {
  serve::QueryCache cache;
  serve::ServeAnswer stale;
  stale.rendered = "{(stale)}";
  // The cache advanced to epoch 2 with a delta that would have killed
  // this entry; a reader still pinned to epoch 1 must not seed it.
  const std::vector<std::string> touched = {"T"};
  cache.Advance(&touched, 2);
  cache.Insert("T($0)", 1, {"T"}, stale);
  EXPECT_EQ(cache.size(), 0u);
  // And an insert at the current epoch is accepted.
  cache.Insert("T($0)", 2, {"T"}, stale);
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(ServingTest, ServingEpochVisibility) {
  Load(kTwoIslandProgram, kTwoIslandFacts);
  Begin();
  auto old_snap = engine_->Open();
  ASSERT_TRUE(old_snap.ok());
  Update({Fact("E", {"4", "5"})}, {});
  // The retired pin answers from its own epoch, the fresh pin from the
  // new one; the cache cannot leak across (entries are epoch-tagged).
  auto old_answer = engine_->Query("?T(1,X)", *old_snap);
  ASSERT_TRUE(old_answer.ok());
  EXPECT_EQ(old_answer->answer.rendered, "{(2), (3), (4)}");
  EXPECT_EQ(Answer("?T(1,X)"), "{(2), (3), (4), (5)}");
  auto old_again = engine_->Query("?T(1,X)", *old_snap);
  ASSERT_TRUE(old_again.ok());
  EXPECT_EQ(old_again->answer.rendered, "{(2), (3), (4)}");
}

TEST_F(ServingTest, ServingUpdateCoalescing) {
  Load(kTwoIslandProgram, kTwoIslandFacts);
  serve::ServingTuning tuning;
  tuning.update_batch = 3;
  Begin(SemanticsKind::kStratified, tuning);
  serve::ServingSession* session = Session();
  const uint64_t epoch0 = session->epoch();

  UpdateBatch ins;
  ins.inserts.push_back(Fact("E", {"4", "5"}));
  UpdateBatch del;
  del.deletes.push_back(Fact("E", {"4", "5"}));
  // Two lines buffer without publishing...
  auto r1 = session->Enqueue(ins);
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1->has_value());
  auto r2 = session->Enqueue(del);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2->has_value());
  EXPECT_EQ(session->epoch(), epoch0);
  // ...the third flushes the window as ONE batch. Within a window the
  // documented netting applies: deletes first, inserts win — so the
  // +E(4,5) survives its own window's -E(4,5).
  UpdateBatch more;
  more.inserts.push_back(Fact("E", {"5", "6"}));
  auto r3 = session->Enqueue(more);
  ASSERT_TRUE(r3.ok());
  ASSERT_TRUE(r3->has_value());
  EXPECT_EQ(session->epoch(), epoch0 + 1);
  EXPECT_EQ(Answer("?E(4,5)"), "true");
  EXPECT_EQ(Answer("?T(1,X)"), "{(2), (3), (4), (5), (6)}");
  const EvalStats stats = session->stats();
  EXPECT_EQ(stats.serve_updates, 3u);
  EXPECT_EQ(stats.serve_batched_updates, 3u);
  EXPECT_EQ(stats.serve_epochs_published, 2u);  // epoch 0 + one flush

  // A partial window flushes on demand.
  auto r4 = session->Enqueue(ins);
  ASSERT_TRUE(r4.ok());
  EXPECT_FALSE(r4->has_value());
  auto flushed = session->Flush();
  ASSERT_TRUE(flushed.ok());
  EXPECT_TRUE(flushed->has_value());
  auto empty = session->Flush();
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty->has_value());
}

TEST_F(ServingTest, ServingPeriodicCompaction) {
  // A delete-heavy stream: with the threshold at 0 nothing compacts;
  // with a low threshold the dead rows are reclaimed — and the answers
  // are identical either way.
  const std::string_view program = "T(X,Y) :- E(X,Y).";
  std::string facts;
  for (int i = 0; i < 200; ++i) {
    facts += "E(a" + std::to_string(i) + ",b). ";
  }
  for (const double threshold : {0.0, 0.1}) {
    Load(program, facts);
    serve::ServingTuning tuning;
    tuning.compact_threshold = threshold;
    Begin(SemanticsKind::kStratified, tuning);
    for (int i = 0; i < 150; ++i) {
      Update({}, {Fact("E", {"a" + std::to_string(i), "b"})});
    }
    const EvalStats stats = Session()->stats();
    if (threshold == 0.0) {
      EXPECT_EQ(stats.serve_compactions, 0u);
    } else {
      EXPECT_GT(stats.serve_compactions, 0u);
    }
    EXPECT_EQ(Answer("?E(a199,b)"), "true");
    EXPECT_EQ(Answer("?E(a0,b)"), "false");
    EXPECT_EQ(Answer("?T(a150,Y)"), "{(b)}");
    auto state = engine_->IncrementalState();
    ASSERT_TRUE(state.ok());
    EXPECT_EQ((*state)->relations[0].size(), 50u);
  }
}

TEST_F(ServingTest, ServingOracleFallbackInvalidatesEverything) {
  // Well-founded maintenance recomputes per update; the cache must treat
  // that as "everything changed" (conservative changed_relations).
  Load("T(X) :- E(X), !S(X).\nU(X) :- S(X).", "E(1). E(2). S(2).");
  Begin(SemanticsKind::kWellFounded);
  EXPECT_EQ(Answer("?U(X)"), "{(2)}");
  EXPECT_EQ(Answer("?T(X)"), "{(1)}");
  UpdateBatch batch;
  batch.inserts.push_back(Fact("E", {"3"}));
  auto result = engine_->ApplyUpdate(batch);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->used_oracle);
  // Both entries died even though the update only touched E.
  EXPECT_EQ(Session()->stats().cache_invalidations, 2u);
  EXPECT_EQ(Answer("?U(X)"), "{(2)}");
  EXPECT_EQ(Answer("?T(X)"), "{(1), (3)}");
  EXPECT_EQ(Session()->stats().cache_hits, 0u);
}

TEST_F(ServingTest, ServingEngineApiLifecycle) {
  Load(kTwoIslandProgram, kTwoIslandFacts);
  // Everything fails before BeginServing...
  EXPECT_FALSE(engine_->Open().ok());
  EXPECT_FALSE(engine_->Query("?E(1,2)").ok());
  EXPECT_FALSE(engine_->serving().ok());
  EXPECT_FALSE(engine_->HasServingSession());
  Begin();
  EXPECT_TRUE(engine_->HasServingSession());
  EXPECT_EQ(Answer("?E(1,2)"), "true");
  // ApplyUpdate routes through the serving session and the maintained
  // state is reachable through the incremental accessors.
  Update({Fact("S", {"9"})}, {});
  EXPECT_EQ(Answer("?U(X)"), "{(7), (8), (9)}");
  ASSERT_TRUE(engine_->IncrementalState().ok());
  // A pinned handle survives EndServing (it owns its sealed state).
  auto snap = engine_->Open();
  ASSERT_TRUE(snap.ok());
  engine_->EndServing();
  EXPECT_FALSE(engine_->HasServingSession());
  EXPECT_FALSE(engine_->Query("?E(1,2)").ok());
  EXPECT_EQ((*snap)->epoch(), 1u);
  auto program = engine_->program();
  ASSERT_TRUE(program.ok());
  auto rel = (*snap)->Find(**program, "U");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ((*rel)->size(), 3u);
  // Loading new text drops the session.
  Begin();
  ASSERT_TRUE(engine_->LoadDatabaseText("E(8,9).").ok());
  EXPECT_FALSE(engine_->HasServingSession());
}

TEST_F(ServingTest, ServingRegistryCounters) {
  Load(kTwoIslandProgram, kTwoIslandFacts);
  Begin();
  const serve::SnapshotRegistry& registry = Session()->registry();
  EXPECT_EQ(registry.epochs_published(), 1u);
  EXPECT_EQ(registry.live_snapshots(), 1);
  {
    auto pinned = engine_->Open();
    ASSERT_TRUE(pinned.ok());
    Update({Fact("E", {"4", "5"})}, {});
    EXPECT_EQ(registry.epochs_published(), 2u);
    // The pinned epoch 0 is still alive alongside the current epoch 1.
    EXPECT_EQ(registry.live_snapshots(), 2);
  }
  // Dropping the last handle retires the old epoch.
  EXPECT_EQ(registry.live_snapshots(), 1);
  EXPECT_GE(registry.pins(), 1u);
  // Per-snapshot stats freeze the counters at seal time.
  auto snap = engine_->Open();
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ((*snap)->stats().serve_updates, 1u);
}

// The snapshot-isolation sweep (the TSan satellite): readers pin
// snapshots and query them while the writer streams updates; afterwards
// every pinned epoch is re-evaluated from scratch (via
// DatabaseSnapshot::ToDatabase) and each recorded answer re-derived
// against the rebuilt epoch must match byte-for-byte.
TEST_F(ServingTest, ServingConcurrentReadersSeeConsistentSnapshots) {
  const std::vector<std::string> queries = {
      "?T(1,X)", "?E(X,Y), T(Y,Z)", "?T(1,9)", "?U(X)", "?T(X,_)"};
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{8}}) {
    for (const StageScheduler scheduler :
         {StageScheduler::kStatic, StageScheduler::kStealing,
          StageScheduler::kAuto}) {
      SCOPED_TRACE(::testing::Message()
                   << "shards=" << shards << " scheduler="
                   << static_cast<int>(scheduler));
      auto symbols = std::make_shared<SymbolTable>();
      Program program = testing::MustProgram(kTwoIslandProgram, symbols);
      Database database(symbols);
      {
        auto parsed = ParseDatabaseInto(kTwoIslandFacts, &database);
        ASSERT_TRUE(parsed.ok());
      }
      IncrementalOptions options;
      options.semantics = MaintainedSemantics::kStratified;
      options.context.num_threads = 2;
      options.context.num_shards = shards;
      options.context.scheduler = scheduler;
      auto session =
          serve::ServingSession::Create(program, &database, options);
      ASSERT_TRUE(session.ok()) << session.status().ToString();

      struct Record {
        serve::SnapshotHandle snap;
        std::vector<std::string> answers;  // parallel to `queries`
      };
      constexpr size_t kReaders = 4;
      std::vector<std::vector<Record>> records(kReaders);
      std::atomic<bool> done{false};
      std::vector<std::thread> readers;
      readers.reserve(kReaders);
      for (size_t r = 0; r < kReaders; ++r) {
        readers.emplace_back([&, r] {
          // Keep reading until the writer is done AND this reader has
          // sampled a few epochs — on a loaded box the writer can finish
          // before a reader's first slice otherwise.
          while (!done.load(std::memory_order_acquire) ||
                 records[r].size() < 3) {
            Record record;
            record.snap = (*session)->Pin();
            for (const std::string& q : queries) {
              auto outcome = (*session)->Query(q, record.snap);
              INFLOG_CHECK(outcome.ok()) << outcome.status().ToString();
              record.answers.push_back(outcome->answer.rendered);
            }
            records[r].push_back(std::move(record));
          }
        });
      }
      // The writer: grow a chain, cut it, regrow — every epoch differs.
      SymbolTable* syms = symbols.get();
      const auto edge = [&](const std::string& a, const std::string& b) {
        return std::make_pair(std::string("E"),
                              Tuple{syms->Intern(a), syms->Intern(b)});
      };
      const std::vector<UpdateBatch> stream = [&] {
        std::vector<UpdateBatch> s(6);
        s[0].inserts = {edge("4", "5")};
        s[1].inserts = {edge("5", "6")};
        s[2].deletes = {edge("2", "3")};
        s[3].inserts = {edge("2", "3")};
        s[4].deletes = {edge("1", "2")};
        s[5].inserts = {edge("1", "2"), edge("6", "7")};
        return s;
      }();
      for (const UpdateBatch& batch : stream) {
        auto result = (*session)->ApplyUpdate(batch);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        std::this_thread::yield();  // let readers interleave with epochs
      }
      done.store(true, std::memory_order_release);
      for (std::thread& t : readers) t.join();

      // Oracle pass: one from-scratch evaluation per distinct epoch.
      std::map<uint64_t, Record*> by_epoch;
      size_t total_records = 0;
      for (auto& reader_records : records) {
        for (Record& record : reader_records) {
          ++total_records;
          Record*& slot = by_epoch[record.snap->epoch()];
          if (slot == nullptr) {
            slot = &record;
            continue;
          }
          // Two readers at the same epoch must agree byte-for-byte.
          EXPECT_EQ(record.answers, slot->answers)
              << "epoch " << record.snap->epoch();
        }
      }
      EXPECT_GT(total_records, 0u);
      for (auto& [epoch, record] : by_epoch) {
        auto oracle_db = record->snap->ToDatabase();
        ASSERT_TRUE(oracle_db.ok()) << oracle_db.status().ToString();
        StratifiedOptions scratch;  // serial, unsharded: the baseline
        auto fresh = EvalStratified(program, *oracle_db, scratch);
        ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
        serve::SnapshotRegistry oracle_registry;
        oracle_registry.Publish(program, *oracle_db, fresh->state,
                                /*changed_relations=*/nullptr, EvalStats{});
        const serve::SnapshotHandle oracle_snap = oracle_registry.Pin();
        for (size_t q = 0; q < queries.size(); ++q) {
          auto parsed =
              serve::ParseServeQuery(queries[q], oracle_snap->symbols());
          ASSERT_TRUE(parsed.ok());
          auto expected =
              serve::EvalServeQuery(*parsed, program, *oracle_snap);
          ASSERT_TRUE(expected.ok()) << expected.status().ToString();
          EXPECT_EQ(record->answers[q], expected->rendered)
              << "epoch " << epoch << " query " << queries[q];
        }
      }
    }
  }
}

}  // namespace
}  // namespace inflog
