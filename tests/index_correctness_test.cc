// Index-correctness tests: the executor's indexed join path against the
// scan path, on randomized programs and databases.
//
// EvalContextOptions::use_join_indexes toggles whether kMatch ops are
// served by the relations' built-in per-column indexes or by full scans.
// Both paths must enumerate exactly the same bindings, so every semantics
// must produce identical states, stage counts, and stage sizes.

#include <gtest/gtest.h>

#include <string>

#include "src/base/rng.h"
#include "src/core/engine.h"
#include "src/eval/inflationary.h"
#include "src/eval/stratified.h"
#include "src/graphs/digraph.h"
#include "tests/test_util.h"

namespace inflog {
namespace {

/// A database of random facts over `num_symbols` constants for the EDB
/// relations A/2, B/2, C/2, D/2 and S/1.
Database RandomFactDb(uint64_t seed, size_t num_symbols, size_t num_facts) {
  Database db;
  Rng rng(seed);
  auto sym = [&](uint64_t i) { return std::to_string(i); };
  for (size_t i = 0; i < num_symbols; ++i) db.AddUniverseSymbol(sym(i));
  const std::vector<std::string> rels = {"A", "B", "C", "D"};
  for (size_t f = 0; f < num_facts; ++f) {
    const std::string& rel = rels[rng.Uniform(rels.size())];
    INFLOG_CHECK(db.AddFactNamed(rel, {sym(rng.Uniform(num_symbols)),
                                       sym(rng.Uniform(num_symbols))})
                     .ok());
  }
  for (size_t i = 0; i < num_symbols; ++i) {
    if (rng.Bernoulli(0.4)) INFLOG_CHECK(db.AddFactNamed("S", {sym(i)}).ok());
  }
  for (const std::string& rel : rels) {
    INFLOG_CHECK(db.DeclareRelation(rel, 2).ok());
  }
  INFLOG_CHECK(db.DeclareRelation("S", 1).ok());
  return db;
}

class IndexCorrectness : public ::testing::TestWithParam<int> {};

TEST_P(IndexCorrectness, InflationaryIndexedEqualsScan) {
  // Join-heavy rules with shared variables in several positions, negation,
  // and a constant-bearing rule so single- and multi-column keys all
  // appear in the compiled plans.
  const std::string program_text =
      "J(X,Z) :- A(X,Y), B(Y,Z).\n"
      "K(X,W) :- J(X,Z), C(Z,W), !D(X,W).\n"
      "L(X) :- K(X,X).\n"
      "M(X,Y) :- J(X,Y), J(Y,X), !L(X).\n";
  Database db = RandomFactDb(7000 + GetParam(), 14, 120);
  // Build the programs over the database's symbols so constants align.
  Program program = testing::MustProgram(program_text, db.shared_symbols());
  Program program_scan =
      testing::MustProgram(program_text, db.shared_symbols());

  InflationaryOptions indexed;
  indexed.context.use_join_indexes = true;
  InflationaryOptions scan;
  scan.context.use_join_indexes = false;

  auto with_index = EvalInflationary(program, db, indexed);
  ASSERT_TRUE(with_index.ok());
  auto with_scan = EvalInflationary(program_scan, db, scan);
  ASSERT_TRUE(with_scan.ok());

  EXPECT_EQ(with_index->state, with_scan->state);
  EXPECT_EQ(with_index->num_stages, with_scan->num_stages);
  EXPECT_EQ(with_index->stage_sizes, with_scan->stage_sizes);
  // Same derivations, different access paths.
  EXPECT_EQ(with_index->stats.derivations, with_scan->stats.derivations);
  EXPECT_GT(with_index->stats.index_lookups, 0u);
  EXPECT_EQ(with_scan->stats.index_lookups, 0u);
  EXPECT_LE(with_index->stats.rows_matched, with_scan->stats.rows_matched);
}

TEST_P(IndexCorrectness, TransitiveClosureOnRandomGraphs) {
  Rng rng(8000 + GetParam());
  const size_t n = 24;
  const Digraph g = RandomDigraph(n, 2.5 / n, &rng);

  auto run = [&](bool use_indexes) {
    Database db;
    GraphToDatabase(g, "E", &db);
    Program program = testing::MustProgram(
        "T(X,Y) :- E(X,Y).\n"
        "T(X,Z) :- T(X,Y), E(Y,Z).\n",
        db.shared_symbols());
    InflationaryOptions options;
    options.context.use_join_indexes = use_indexes;
    auto result = EvalInflationary(program, db, options);
    INFLOG_CHECK(result.ok()) << result.status().ToString();
    return std::move(*result);
  };

  const InflationaryResult indexed = run(true);
  const InflationaryResult scanned = run(false);
  EXPECT_EQ(indexed.state, scanned.state);
  EXPECT_EQ(indexed.num_stages, scanned.num_stages);
  EXPECT_EQ(indexed.stage_sizes, scanned.stage_sizes);

  // Cross-check against the graph oracle.
  const auto oracle = TransitiveClosure(g);
  size_t oracle_pairs = 0;
  for (size_t u = 0; u < n; ++u) {
    for (size_t v = 0; v < n; ++v) {
      if (oracle[u][v]) ++oracle_pairs;
    }
  }
  EXPECT_EQ(indexed.state.relations[0].size(), oracle_pairs);
}

TEST_P(IndexCorrectness, StratifiedIndexedEqualsScan) {
  Rng rng(9000 + GetParam());
  const size_t n = 16;
  const Digraph g = RandomDigraph(n, 2.0 / n, &rng);

  auto run = [&](bool use_indexes) {
    Database db;
    GraphToDatabase(g, "E", &db);
    INFLOG_CHECK(db.AddFactNamed("S", {"0"}).ok());
    Program program = testing::MustProgram(
        "R(X) :- S(X).\n"
        "R(Y) :- R(X), E(X,Y).\n"
        "U(X,Y) :- E(X,Y), !R(X).\n",
        db.shared_symbols());
    StratifiedOptions options;
    options.context.use_join_indexes = use_indexes;
    auto result = EvalStratified(program, db, options);
    INFLOG_CHECK(result.ok()) << result.status().ToString();
    return std::move(*result);
  };

  const StratifiedResult indexed = run(true);
  const StratifiedResult scanned = run(false);
  EXPECT_EQ(indexed.state, scanned.state);
  EXPECT_EQ(indexed.num_strata, scanned.num_strata);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexCorrectness, ::testing::Range(0, 10));

}  // namespace
}  // namespace inflog
