// Tests for the immediate consequence operator Θ (Section 2 of the paper):
// its values on the paper's example programs and the fixpoint condition on
// the path/cycle families.

#include <gtest/gtest.h>

#include "src/eval/theta.h"
#include "tests/test_util.h"

namespace inflog {
namespace {

using testing::DbFromGraph;
using testing::IdbRelation;
using testing::MustProgram;
using testing::TuplesOf;
using testing::UnarySet;

constexpr char kPi1[] = "T(X) :- E(Y,X), !T(Y).";

class ThetaFixture : public ::testing::Test {
 protected:
  /// Builds Θ for `program_text` over the digraph `g`.
  void Init(std::string_view program_text, const Digraph& g) {
    symbols_ = std::make_shared<SymbolTable>();
    program_ = std::make_unique<Program>(MustProgram(program_text, symbols_));
    db_ = std::make_unique<Database>(DbFromGraph(g, symbols_));
    auto ctx = EvalContext::Create(*program_, *db_);
    INFLOG_CHECK(ctx.ok()) << ctx.status().ToString();
    ctx_ = std::make_unique<EvalContext>(std::move(ctx).value());
    theta_ = std::make_unique<ThetaOperator>(ctx_.get());
  }

  /// A state with the unary relation of `pred` set to the given vertices.
  IdbState UnaryState(std::string_view pred,
                      const std::vector<int>& members) {
    IdbState s = MakeEmptyIdbState(*program_);
    const int idb = program_->predicate(*program_->FindPredicate(pred))
                        .idb_index;
    for (int v : members) {
      s.relations[idb].Insert(Tuple{symbols_->Intern(std::to_string(v))});
    }
    return s;
  }

  std::shared_ptr<SymbolTable> symbols_;
  std::unique_ptr<Program> program_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<EvalContext> ctx_;
  std::unique_ptr<ThetaOperator> theta_;
};

TEST_F(ThetaFixture, Pi1OnEmptyState) {
  // Θ(∅) = {x : ∃y E(y,x)} — every vertex with a predecessor.
  Init(kPi1, PathGraph(4));  // 0→1→2→3
  IdbState out = theta_->Apply(UnaryState("T", {}));
  EXPECT_EQ(UnarySet(*symbols_, IdbRelation(*program_, out, "T")),
            (std::set<std::string>{"1", "2", "3"}));
}

TEST_F(ThetaFixture, Pi1DefinitionMatchesPaper) {
  // Θ(T) = {a : ∃y (E(y,a) ∧ ¬T(y))}.
  Init(kPi1, PathGraph(4));
  IdbState out = theta_->Apply(UnaryState("T", {0, 2}));
  // Successors of non-members {1, 3}: E(1,2) gives 2, E(3,-) nothing.
  EXPECT_EQ(UnarySet(*symbols_, IdbRelation(*program_, out, "T")),
            (std::set<std::string>{"2"}));
}

TEST_F(ThetaFixture, Pi1UniqueFixpointOnPath) {
  // On Lₙ the unique fixpoint is the odd 0-based positions (the paper's
  // {2,4,...} in 1-based numbering).
  Init(kPi1, PathGraph(5));
  EXPECT_TRUE(theta_->IsFixpoint(UnaryState("T", {1, 3})));
  EXPECT_FALSE(theta_->IsFixpoint(UnaryState("T", {})));
  EXPECT_FALSE(theta_->IsFixpoint(UnaryState("T", {0, 2, 4})));
  EXPECT_FALSE(theta_->IsFixpoint(UnaryState("T", {1, 2, 3})));
}

TEST_F(ThetaFixture, Pi1OddCycleHasNoFixpointAmongCandidates) {
  Init(kPi1, CycleGraph(3));
  // Exhaustive: no subset of {0,1,2} is a fixpoint on C₃.
  for (int mask = 0; mask < 8; ++mask) {
    std::vector<int> members;
    for (int v = 0; v < 3; ++v) {
      if (mask & (1 << v)) members.push_back(v);
    }
    EXPECT_FALSE(theta_->IsFixpoint(UnaryState("T", members)))
        << "mask " << mask;
  }
}

TEST_F(ThetaFixture, Pi1EvenCycleHasTheTwoAlternatingFixpoints) {
  Init(kPi1, CycleGraph(4));
  EXPECT_TRUE(theta_->IsFixpoint(UnaryState("T", {0, 2})));
  EXPECT_TRUE(theta_->IsFixpoint(UnaryState("T", {1, 3})));
  EXPECT_FALSE(theta_->IsFixpoint(UnaryState("T", {0, 1})));
  EXPECT_FALSE(theta_->IsFixpoint(UnaryState("T", {0, 1, 2, 3})));
  EXPECT_FALSE(theta_->IsFixpoint(UnaryState("T", {})));
}

TEST_F(ThetaFixture, ToggleRuleHasNoFixpoint) {
  // T(z) ← ¬T(w) "toggles": Θ(∅) = A, Θ(A) = ∅, and no S with ∅⊊S⊊A
  // works either (the paper's key gadget).
  Init("T(Z) :- !T(W).", PathGraph(3));
  for (int mask = 0; mask < 8; ++mask) {
    std::vector<int> members;
    for (int v = 0; v < 3; ++v) {
      if (mask & (1 << v)) members.push_back(v);
    }
    EXPECT_FALSE(theta_->IsFixpoint(UnaryState("T", members)));
  }
}

TEST_F(ThetaFixture, GuardedToggleFixpointIffQFull) {
  // T(z) ← ¬Q(u), ¬T(w): unique fixpoint (with T = ∅) iff the complement
  // of Q is empty (proof of Theorem 1). Here Q is a database relation.
  auto run = [&](const std::vector<int>& q_members, bool expect_fixpoint) {
    symbols_ = std::make_shared<SymbolTable>();
    program_ = std::make_unique<Program>(
        MustProgram("T(Z) :- !Q(U), !T(W).", symbols_));
    db_ = std::make_unique<Database>(DbFromGraph(PathGraph(3), symbols_));
    for (int v : q_members) {
      INFLOG_CHECK(
          db_->AddFact("Q", Tuple{symbols_->Intern(std::to_string(v))})
              .ok());
    }
    if (!db_->HasRelation("Q")) {
      INFLOG_CHECK(db_->DeclareRelation("Q", 1).ok());
    }
    auto ctx = EvalContext::Create(*program_, *db_);
    INFLOG_CHECK(ctx.ok());
    ctx_ = std::make_unique<EvalContext>(std::move(ctx).value());
    theta_ = std::make_unique<ThetaOperator>(ctx_.get());
    EXPECT_EQ(theta_->IsFixpoint(UnaryState("T", {})), expect_fixpoint);
  };
  run({0, 1, 2}, true);   // Q = A: toggle disabled, T = ∅ is a fixpoint
  run({0, 2}, false);     // Q misses 1: toggle fires
  run({}, false);
}

TEST_F(ThetaFixture, Pi2OperatorComputesBothComponents) {
  constexpr char kPi2[] =
      "S1(X,Y) :- E(X,Y).\n"
      "S1(X,Y) :- E(X,Z), S1(Z,Y).\n"
      "S2(X,Y,Z,W) :- S1(X,Y), !S1(Z,W).\n";
  Init(kPi2, PathGraph(3));  // edges 0→1, 1→2
  // Build S = ({(0,1)}, ∅) and apply Θ once.
  IdbState s = MakeEmptyIdbState(*program_);
  const int s1 = program_->predicate(*program_->FindPredicate("S1"))
                     .idb_index;
  s.relations[s1].Insert(
      Tuple{symbols_->Intern("0"), symbols_->Intern("1")});
  IdbState out = theta_->Apply(s);
  // Θ₁(S) = E ∪ {(x,y) : E(x,z) ∧ S1(z,y)} = {(0,1),(1,2)} — no new pair
  // from the join since S1 = {(0,1)} and E into 0 is empty.
  auto s1_tuples = TuplesOf(*symbols_, IdbRelation(*program_, out, "S1"));
  EXPECT_EQ(s1_tuples, (std::vector<std::vector<std::string>>{
                           {"0", "1"}, {"1", "2"}}));
  // Θ₂(S) = S1 × ¬S1 = {(0,1)} × (A² \ {(0,1)}): 9 − 1 = 8 quadruples.
  EXPECT_EQ(IdbRelation(*program_, out, "S2").size(), 8u);
}

TEST_F(ThetaFixture, PositiveProgramOperatorIsMonotone) {
  // Spot-check Tarski's premise on π₃: S ⊆ S' ⇒ Θ(S) ⊆ Θ(S').
  constexpr char kPi3[] =
      "S(X,Y) :- E(X,Y).\nS(X,Y) :- E(X,Z), S(Z,Y).";
  Init(kPi3, CycleGraph(4));
  const int idb = program_->predicate(*program_->FindPredicate("S"))
                      .idb_index;
  IdbState small = MakeEmptyIdbState(*program_);
  small.relations[idb].Insert(
      Tuple{symbols_->Intern("0"), symbols_->Intern("1")});
  IdbState big = small;
  big.relations[idb].Insert(
      Tuple{symbols_->Intern("1"), symbols_->Intern("2")});
  EXPECT_TRUE(theta_->Apply(small).IsSubsetOf(theta_->Apply(big)));
}

TEST_F(ThetaFixture, NonMonotoneWithNegation) {
  // π₁ violates monotonicity: growing T can shrink Θ(T).
  Init(kPi1, PathGraph(3));
  IdbState empty = UnaryState("T", {});
  IdbState full = UnaryState("T", {0, 1, 2});
  EXPECT_FALSE(theta_->Apply(empty).IsSubsetOf(theta_->Apply(full)));
}

TEST_F(ThetaFixture, EqualityAndInequalityLiterals) {
  Init("Diag(X,Y) :- E(X,Z), E(Y,W), X = Y.\n"
       "Off(X,Y) :- E(X,Z), E(Y,W), X != Y.",
       PathGraph(3));  // vertices with outgoing edges: 0, 1
  IdbState out = theta_->Apply(MakeEmptyIdbState(*program_));
  EXPECT_EQ(TuplesOf(*symbols_, IdbRelation(*program_, out, "Diag")),
            (std::vector<std::vector<std::string>>{{"0", "0"}, {"1", "1"}}));
  EXPECT_EQ(TuplesOf(*symbols_, IdbRelation(*program_, out, "Off")),
            (std::vector<std::vector<std::string>>{{"0", "1"}, {"1", "0"}}));
}

TEST_F(ThetaFixture, ConstantsInHeads) {
  // The succinct-3COL input-gate shape: a bodyless rule with a constant.
  Init("G(X,1) :- .", PathGraph(2));
  IdbState out = theta_->Apply(MakeEmptyIdbState(*program_));
  // X ranges over the universe {0,1} (program constant 1 is already a
  // vertex name here).
  EXPECT_EQ(TuplesOf(*symbols_, IdbRelation(*program_, out, "G")),
            (std::vector<std::vector<std::string>>{{"0", "1"}, {"1", "1"}}));
}

TEST_F(ThetaFixture, ZeroArityPredicate) {
  Init("Flag :- E(X,Y).\nNever :- E(X,X).", PathGraph(3));
  IdbState out = theta_->Apply(MakeEmptyIdbState(*program_));
  EXPECT_EQ(IdbRelation(*program_, out, "Flag").size(), 1u);
  EXPECT_EQ(IdbRelation(*program_, out, "Never").size(), 0u);
}

TEST_F(ThetaFixture, MissingEdbIsErrorByDefault) {
  symbols_ = std::make_shared<SymbolTable>();
  Program p = MustProgram("T(X) :- Missing(X).", symbols_);
  Database db = DbFromGraph(PathGraph(2), symbols_);
  EXPECT_FALSE(EvalContext::Create(p, db).ok());
  EvalContextOptions opts;
  opts.allow_missing_edb = true;
  EXPECT_TRUE(EvalContext::Create(p, db, opts).ok());
}

}  // namespace
}  // namespace inflog
