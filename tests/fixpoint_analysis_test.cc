// Tests for the grounder, the Clark-completion encoding, and the
// FixpointAnalyzer: the paper's Section 2 example (paths, cycles, Gₖ), the
// least-fixpoint algorithm of Theorem 3, and randomized cross-checks
// against brute-force enumeration of the full state space.

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/base/strings.h"
#include "src/fixpoint/analysis.h"
#include "src/fixpoint/brute_force.h"
#include "src/ground/grounder.h"
#include "tests/test_util.h"

namespace inflog {
namespace {

using testing::CanonStates;
using testing::DbFromGraph;
using testing::IdbRelation;
using testing::MustProgram;
using testing::UnarySet;

constexpr char kPi1[] = "T(X) :- E(Y,X), !T(Y).";

// --- Grounder. ---

TEST(GrounderTest, TransitiveClosureGrounding) {
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram(
      "S(X,Y) :- E(X,Y).\nS(X,Y) :- E(X,Z), S(Z,Y).", symbols);
  Database db = DbFromGraph(PathGraph(3), symbols);  // E = {01, 12}
  auto g = GroundProgramFor(p, db);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  // Rule 1: one ground rule per edge (bodies fully evaluated away).
  // Rule 2: per edge (x,z), y ranges over A: 2 × 3 = 6.
  EXPECT_EQ(g->rules.size(), 2u + 6u);
  // Facts appear as ground rules with empty bodies.
  size_t empty_bodies = 0;
  for (const GroundRule& r : g->rules) {
    if (g->RuleBody(r).empty()) ++empty_bodies;
  }
  EXPECT_EQ(empty_bodies, 2u);
}

TEST(GrounderTest, ToggleRuleGroundsOverUniverseSquared) {
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram("T(Z) :- !T(W).", symbols);
  Database db = DbFromGraph(PathGraph(3), symbols);
  auto g = GroundProgramFor(p, db);
  ASSERT_TRUE(g.ok());
  // z, w over A²; bodies {¬T(w)} dedup by (head, body): 9 rules.
  EXPECT_EQ(g->rules.size(), 9u);
  EXPECT_EQ(g->atoms.size(), 3u);
}

TEST(GrounderTest, UnsatisfiableEdbPartDropsInstances) {
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram("T(X) :- E(X,X).", symbols);
  Database db = DbFromGraph(PathGraph(3), symbols);  // no self-loops
  auto g = GroundProgramFor(p, db);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->rules.empty());
}

TEST(GrounderTest, PosNegClashDropsRule) {
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram("T(X) :- S(X), !S(X).\nS(X) :- E(X,Y).", symbols);
  Database db = DbFromGraph(PathGraph(2), symbols);
  auto g = GroundProgramFor(p, db);
  ASSERT_TRUE(g.ok());
  for (const GroundRule& r : g->rules) {
    EXPECT_NE(p.predicate(g->atoms.atom(r.head).predicate).name, "T");
  }
}

TEST(GrounderTest, InequalityFiltersInstances) {
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram("P(X,Y) :- E(X,Z), E(Y,W), X != Y.", symbols);
  Database db = DbFromGraph(PathGraph(3), symbols);  // out-vertices: 0, 1
  auto g = GroundProgramFor(p, db);
  ASSERT_TRUE(g.ok());
  // (x,y) ∈ {0,1}², x ≠ y → 2 ground rules (each with empty body).
  EXPECT_EQ(g->rules.size(), 2u);
}

TEST(GrounderTest, GroundRuleLimitEnforced) {
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram("T(Z) :- !T(W).", symbols);
  Database db = DbFromGraph(PathGraph(10), symbols);
  GrounderOptions opts;
  opts.max_ground_rules = 10;  // 100 instantiations exceed this
  auto g = GroundProgramFor(p, db, opts);
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kResourceExhausted);
}

TEST(GrounderTest, MissingEdbPolicies) {
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram("T(X) :- Ghost(X).", symbols);
  Database db = DbFromGraph(PathGraph(2), symbols);
  EXPECT_FALSE(GroundProgramFor(p, db).ok());
  GrounderOptions opts;
  opts.allow_missing_edb = true;
  auto g = GroundProgramFor(p, db, opts);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->rules.empty());
}

// --- Analyzer on the paper's §2 example. ---

FixpointAnalyzer MustAnalyzer(const Program& p, const Database& db) {
  auto a = FixpointAnalyzer::Create(&p, &db);
  INFLOG_CHECK(a.ok()) << a.status().ToString();
  return std::move(a).value();
}

TEST(AnalyzerTest, PathHasUniqueFixpointAtOddPositions) {
  for (size_t n : {2u, 3u, 4u, 5u, 6u, 7u}) {
    auto symbols = std::make_shared<SymbolTable>();
    Program p = MustProgram(kPi1, symbols);
    Database db = DbFromGraph(PathGraph(n), symbols);
    FixpointAnalyzer analyzer = MustAnalyzer(p, db);
    auto unique = analyzer.UniqueFixpoint();
    ASSERT_TRUE(unique.ok());
    EXPECT_EQ(*unique, UniqueStatus::kUnique) << "n=" << n;
    auto fp = analyzer.FindFixpoint();
    ASSERT_TRUE(fp.ok());
    ASSERT_TRUE(fp->has_value());
    std::set<std::string> expected;
    for (size_t v = 1; v < n; v += 2) expected.insert(std::to_string(v));
    EXPECT_EQ(UnarySet(*symbols, IdbRelation(p, **fp, "T")), expected);
  }
}

TEST(AnalyzerTest, OddCyclesHaveNoFixpoint) {
  for (size_t n : {3u, 5u, 7u, 9u}) {
    auto symbols = std::make_shared<SymbolTable>();
    Program p = MustProgram(kPi1, symbols);
    Database db = DbFromGraph(CycleGraph(n), symbols);
    FixpointAnalyzer analyzer = MustAnalyzer(p, db);
    auto has = analyzer.HasFixpoint();
    ASSERT_TRUE(has.ok());
    EXPECT_FALSE(*has) << "n=" << n;
    auto unique = analyzer.UniqueFixpoint();
    ASSERT_TRUE(unique.ok());
    EXPECT_EQ(*unique, UniqueStatus::kNoFixpoint);
  }
}

TEST(AnalyzerTest, EvenCyclesHaveExactlyTwoFixpoints) {
  for (size_t n : {4u, 6u, 8u}) {
    auto symbols = std::make_shared<SymbolTable>();
    Program p = MustProgram(kPi1, symbols);
    Database db = DbFromGraph(CycleGraph(n), symbols);
    FixpointAnalyzer analyzer = MustAnalyzer(p, db);
    auto fps = analyzer.EnumerateFixpoints();
    ASSERT_TRUE(fps.ok());
    ASSERT_EQ(fps->size(), 2u) << "n=" << n;
    // The two fixpoints are the alternating sets — incomparable.
    EXPECT_FALSE((*fps)[0].IsSubsetOf((*fps)[1]));
    EXPECT_FALSE((*fps)[1].IsSubsetOf((*fps)[0]));
    auto unique = analyzer.UniqueFixpoint();
    ASSERT_TRUE(unique.ok());
    EXPECT_EQ(*unique, UniqueStatus::kMultiple);
  }
}

TEST(AnalyzerTest, DisjointCyclesMultiplyFixpoints) {
  // Gₖ (k disjoint C₄'s) has exactly 2ᵏ pairwise-incomparable fixpoints —
  // exponentially many in the size of the database (Section 2).
  for (size_t k : {1u, 2u, 3u, 4u, 5u}) {
    auto symbols = std::make_shared<SymbolTable>();
    Program p = MustProgram(kPi1, symbols);
    Database db = DbFromGraph(DisjointCycles(k, 4), symbols);
    FixpointAnalyzer analyzer = MustAnalyzer(p, db);
    auto count = analyzer.CountFixpoints();
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, uint64_t{1} << k) << "k=" << k;
  }
}

TEST(AnalyzerTest, DisjointCyclesHaveNoLeastFixpoint) {
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram(kPi1, symbols);
  Database db = DbFromGraph(DisjointCycles(3, 4), symbols);
  FixpointAnalyzer analyzer = MustAnalyzer(p, db);
  auto least = analyzer.LeastFixpoint();
  ASSERT_TRUE(least.ok());
  EXPECT_TRUE(least->has_fixpoint);
  EXPECT_FALSE(least->has_least);
  // The intersection of the alternating fixpoints is empty, and ∅ is not
  // a fixpoint here.
  EXPECT_EQ(least->intersection.TotalTuples(), 0u);
}

TEST(AnalyzerTest, UniqueFixpointIsLeast) {
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram(kPi1, symbols);
  Database db = DbFromGraph(PathGraph(6), symbols);
  FixpointAnalyzer analyzer = MustAnalyzer(p, db);
  auto least = analyzer.LeastFixpoint();
  ASSERT_TRUE(least.ok());
  EXPECT_TRUE(least->has_least);
  EXPECT_EQ(UnarySet(*symbols, IdbRelation(p, least->intersection, "T")),
            (std::set<std::string>{"1", "3", "5"}));
  EXPECT_GE(least->sat_calls, 2u);
}

TEST(AnalyzerTest, PositiveProgramLeastFixpointMatchesEvaluation) {
  // For positive DATALOG the least fixpoint exists and equals the
  // bottom-up evaluation; the analyzer must find exactly it.
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram(
      "S(X,Y) :- E(X,Y).\nS(X,Y) :- E(X,Z), S(Z,Y).", symbols);
  Database db = DbFromGraph(CycleGraph(4), symbols);
  FixpointAnalyzer analyzer = MustAnalyzer(p, db);
  auto least = analyzer.LeastFixpoint();
  ASSERT_TRUE(least.ok());
  ASSERT_TRUE(least->has_least);
  // TC of C₄ is all 16 pairs.
  EXPECT_EQ(IdbRelation(p, least->intersection, "S").size(), 16u);
  // But fixpoints are not unique: S = A² is also a fixpoint only if it is
  // supported... (here TC is total so the fixpoint IS unique).
  auto unique = analyzer.UniqueFixpoint();
  ASSERT_TRUE(unique.ok());
  EXPECT_EQ(*unique, UniqueStatus::kUnique);
}

TEST(AnalyzerTest, PositiveProgramCanHaveManyFixpointsButALeast) {
  // S(x) ← S(x) supports any subset of A: 2^|A| fixpoints, least = ∅.
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram("S(X) :- S(X).", symbols);
  Database db = DbFromGraph(PathGraph(3), symbols);
  FixpointAnalyzer analyzer = MustAnalyzer(p, db);
  auto count = analyzer.CountFixpoints();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 8u);
  auto least = analyzer.LeastFixpoint();
  ASSERT_TRUE(least.ok());
  EXPECT_TRUE(least->has_least);
  EXPECT_EQ(least->intersection.TotalTuples(), 0u);
}

TEST(AnalyzerTest, EnumerationRespectsLimit) {
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram("S(X) :- S(X).", symbols);
  Database db = DbFromGraph(PathGraph(4), symbols);
  FixpointAnalyzer analyzer = MustAnalyzer(p, db);
  auto fps = analyzer.EnumerateFixpoints(5);
  ASSERT_TRUE(fps.ok());
  EXPECT_EQ(fps->size(), 5u);
}

TEST(AnalyzerTest, CountLimitExceededIsError) {
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram("S(X) :- S(X).", symbols);
  Database db = DbFromGraph(PathGraph(4), symbols);
  FixpointAnalyzer analyzer = MustAnalyzer(p, db);
  auto count = analyzer.CountFixpoints(/*limit=*/7);
  EXPECT_FALSE(count.ok());
  EXPECT_EQ(count.status().code(), StatusCode::kResourceExhausted);
}

// --- Brute force cross-checks. ---

TEST(BruteForceTest, MatchesAnalyzerOnPaperExamples) {
  struct Case {
    const char* name;
    Digraph graph;
  };
  const Case cases[] = {
      {"L3", PathGraph(3)},
      {"L4", PathGraph(4)},
      {"C3", CycleGraph(3)},
      {"C4", CycleGraph(4)},
      {"C5", CycleGraph(5)},
  };
  for (const Case& c : cases) {
    auto symbols = std::make_shared<SymbolTable>();
    Program p = MustProgram(kPi1, symbols);
    Database db = DbFromGraph(c.graph, symbols);
    auto brute = BruteForceFixpoints(p, db);
    ASSERT_TRUE(brute.ok()) << c.name << ": " << brute.status().ToString();
    FixpointAnalyzer analyzer = MustAnalyzer(p, db);
    auto sat = analyzer.EnumerateFixpoints();
    ASSERT_TRUE(sat.ok()) << c.name;
    EXPECT_EQ(CanonStates(p, *brute), CanonStates(p, *sat)) << c.name;
  }
}

TEST(BruteForceTest, RefusesLargeSpaces) {
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram("S(X,Y) :- E(X,Y), !S(Y,X).", symbols);
  Database db = DbFromGraph(PathGraph(6), symbols);  // 36 binary atoms
  auto r = BruteForceFixpoints(p, db);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

/// Random DATALOG¬ program over E/2 with unary IDB predicates T, S —
/// small enough that the full 2^(2|A|) state space is enumerable.
std::string RandomUnaryProgram(Rng* rng) {
  const char* heads[] = {"T", "S"};
  const char* vars[] = {"X", "Y", "Z"};
  std::string text;
  const int num_rules = 1 + static_cast<int>(rng->Uniform(3));
  for (int r = 0; r < num_rules; ++r) {
    const char* head = heads[rng->Uniform(2)];
    const char* head_var = vars[rng->Uniform(3)];
    std::vector<std::string> body;
    const int num_lits = 1 + static_cast<int>(rng->Uniform(3));
    for (int l = 0; l < num_lits; ++l) {
      switch (rng->Uniform(6)) {
        case 0:
          body.push_back(StrCat("E(", vars[rng->Uniform(3)], ",",
                                vars[rng->Uniform(3)], ")"));
          break;
        case 1:
          body.push_back(StrCat("T(", vars[rng->Uniform(3)], ")"));
          break;
        case 2:
          body.push_back(StrCat("S(", vars[rng->Uniform(3)], ")"));
          break;
        case 3:
          body.push_back(StrCat("!T(", vars[rng->Uniform(3)], ")"));
          break;
        case 4:
          body.push_back(StrCat("!S(", vars[rng->Uniform(3)], ")"));
          break;
        case 5:
          body.push_back(StrCat(vars[rng->Uniform(3)],
                                rng->Bernoulli(0.5) ? " = " : " != ",
                                vars[rng->Uniform(3)]));
          break;
      }
    }
    text += StrCat(head, "(", head_var, ") :- ", StrJoin(body, ", "), ".\n");
  }
  return text;
}

class RandomProgramCrossCheck : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgramCrossCheck, SatEnumerationEqualsBruteForce) {
  const int seed = GetParam();
  Rng rng(seed * 37 + 5);
  const std::string text = RandomUnaryProgram(&rng);
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram(text, symbols);
  const Digraph g = RandomDigraph(3, 0.4, &rng);
  Database db = DbFromGraph(g, symbols);
  // A generated predicate may occur only in bodies, making it a (missing)
  // EDB relation; both pipelines then read it as empty.
  BruteForceOptions brute_opts;
  brute_opts.allow_missing_edb = true;
  auto brute = BruteForceFixpoints(p, db, brute_opts);
  ASSERT_TRUE(brute.ok()) << text << brute.status().ToString();
  AnalyzeOptions analyze_opts;
  analyze_opts.grounder.allow_missing_edb = true;
  auto analyzer = FixpointAnalyzer::Create(&p, &db, analyze_opts);
  ASSERT_TRUE(analyzer.ok()) << text;
  auto sat = analyzer->EnumerateFixpoints();
  ASSERT_TRUE(sat.ok()) << text;
  EXPECT_EQ(CanonStates(p, *brute), CanonStates(p, *sat))
      << "program:\n"
      << text << "graph: " << g.ToString();
  // Least-fixpoint decision agrees with brute force too.
  auto least = analyzer->LeastFixpoint();
  ASSERT_TRUE(least.ok());
  EXPECT_EQ(least->has_fixpoint, !brute->empty()) << text;
  if (!brute->empty()) {
    bool brute_has_least = false;
    for (const IdbState& cand : *brute) {
      bool below_all = true;
      for (const IdbState& other : *brute) {
        below_all &= cand.IsSubsetOf(other);
      }
      if (below_all) {
        brute_has_least = true;
        EXPECT_EQ(testing::CanonState(p, cand),
                  testing::CanonState(p, least->intersection))
            << text;
      }
    }
    EXPECT_EQ(least->has_least, brute_has_least) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramCrossCheck,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace inflog
