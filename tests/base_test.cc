// Unit tests for src/base: Status/Result, strings, deterministic RNG,
// and the ThreadPool behind the parallel fixpoint stage.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "src/base/result.h"
#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/base/strings.h"
#include "src/base/thread_pool.h"

namespace inflog {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad arity");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad arity");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad arity");
}

TEST(StatusTest, AllCodesRender) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "ResourceExhausted");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

Status FailingOp() { return Status::NotFound("missing"); }
Status Passthrough() {
  INFLOG_RETURN_IF_ERROR(FailingOp());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(Passthrough().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> HalfOf(int n) {
  if (n % 2 != 0) return Status::InvalidArgument("odd");
  return n / 2;
}
Result<int> QuarterOf(int n) {
  INFLOG_ASSIGN_OR_RETURN(const int half, HalfOf(n));
  return HalfOf(half);
}

TEST(ResultTest, AssignOrReturnChains) {
  ASSERT_TRUE(QuarterOf(8).ok());
  EXPECT_EQ(*QuarterOf(8), 2);
  EXPECT_FALSE(QuarterOf(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(QuarterOf(7).ok());
}

TEST(StringsTest, StrCat) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringsTest, StrJoin) {
  std::vector<int> v{1, 2, 3};
  EXPECT_EQ(StrJoin(v, ","), "1,2,3");
  EXPECT_EQ(StrJoin(std::vector<int>{}, ","), "");
}

TEST(StringsTest, StrSplitDropsEmpty) {
  auto parts = StrSplit("a,,b,c,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 5);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(11);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  auto original = v;
  rng.Shuffle(&v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_workers(), 3u);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForBarriersBeforeReturning) {
  // After ParallelFor returns, every task's writes must be visible to the
  // caller — the fixpoint stage merges immediately afterwards.
  ThreadPool pool(4);
  std::vector<size_t> out(257, 0);
  pool.ParallelFor(out.size(), [&](size_t i) { out[i] = i * i; });
  for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0u);
  std::vector<size_t> order;
  pool.ParallelFor(5, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, EmptyAndSingleIterationLoops) {
  ThreadPool pool(2);
  size_t calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0u);
  pool.ParallelFor(1, [&](size_t i) {
    ++calls;
    EXPECT_EQ(i, 0u);
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ThreadPoolTest, SubmitRunsDetachedTasks) {
  std::atomic<int> sum{0};
  {
    ThreadPool pool(2);
    for (int i = 1; i <= 10; ++i) {
      pool.Submit([&sum, i] { sum.fetch_add(i); });
    }
    // The destructor drains the queue before joining.
  }
  EXPECT_EQ(sum.load(), 55);
}

TEST(ThreadPoolTest, ManyLoopsReuseTheSameWorkers) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 100; ++round) {
    pool.ParallelFor(17, [&](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 1700u);
}

TEST(ThreadPoolTest, HardwareConcurrencyIsPositive) {
  EXPECT_GE(ThreadPool::HardwareConcurrency(), 1u);
}

TEST(ThreadPoolTest, ParallelForRethrowsBodyExceptionOnCaller) {
  // A body throwing on a worker thread must not std::terminate: the first
  // exception is captured, the barrier completes, and the exception
  // resurfaces on the calling thread.
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.ParallelFor(64,
                       [&](size_t i) {
                         if (i == 7) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForKeepsFirstOfManyExceptions) {
  ThreadPool pool(4);
  // Every body throws; exactly one exception must come back, and the pool
  // must stay usable afterwards (the barrier was kept intact).
  EXPECT_THROW(pool.ParallelFor(
                   100, [](size_t) { throw std::runtime_error("each"); }),
               std::runtime_error);
  std::atomic<size_t> ran{0};
  pool.ParallelFor(100, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 100u);
}

TEST(ThreadPoolTest, ParallelForInlineExceptionPropagates) {
  ThreadPool pool(0);
  EXPECT_THROW(
      pool.ParallelFor(3, [](size_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
}

/// Coverage harness for ParallelForDynamic: records every (item, row)
/// processed and fails on gaps or overlaps.
class DynamicCoverage {
 public:
  explicit DynamicCoverage(const std::vector<size_t>& rows) {
    for (size_t r : rows) hits_.emplace_back(std::max<size_t>(r, 1));
    for (auto& h : hits_) {
      for (auto& c : h) c.store(0);
    }
  }

  void Cover(size_t item, size_t begin, size_t end) {
    atomic_calls_.fetch_add(begin == 0 && end == 0 ? 1 : 0);
    for (size_t r = begin; r < end; ++r) hits_[item][r].fetch_add(1);
  }

  void ExpectExact(const std::vector<size_t>& rows) {
    for (size_t i = 0; i < rows.size(); ++i) {
      for (size_t r = 0; r < rows[i]; ++r) {
        EXPECT_EQ(hits_[i][r].load(), 1) << "item " << i << " row " << r;
      }
    }
  }

  size_t atomic_calls() const { return atomic_calls_.load(); }

 private:
  std::vector<std::vector<std::atomic<int>>> hits_;
  std::atomic<size_t> atomic_calls_{0};
};

TEST(ThreadPoolTest, ParallelForDynamicCoversEveryRowOnce) {
  ThreadPool pool(3);
  const std::vector<size_t> rows = {1000, 3, 0, 517, 64};
  DynamicCoverage cov(rows);
  pool.ParallelForDynamic(rows, /*min_grain=*/16,
                          [&](size_t i, size_t b, size_t e, size_t w) {
                            ASSERT_LE(w, pool.num_workers());
                            cov.Cover(i, b, e);
                          });
  cov.ExpectExact(rows);
  // The 0-row item is atomic: exactly one body(i, 0, 0) call.
  EXPECT_EQ(cov.atomic_calls(), 1u);
}

TEST(ThreadPoolTest, ParallelForDynamicZeroWorkersRunsWholeItemsInOrder) {
  ThreadPool pool(0);
  std::vector<std::pair<size_t, size_t>> calls;
  const std::vector<size_t> rows = {5, 0, 2};
  auto stats = pool.ParallelForDynamic(
      rows, 4, [&](size_t i, size_t b, size_t e, size_t w) {
        EXPECT_EQ(w, 0u);
        EXPECT_EQ(b, 0u);
        calls.emplace_back(i, e);
      });
  EXPECT_EQ(calls, (std::vector<std::pair<size_t, size_t>>{
                       {0, 5}, {1, 0}, {2, 2}}));
  EXPECT_EQ(stats.steals, 0u);
  EXPECT_EQ(stats.splits, 0u);
}

TEST(ThreadPoolTest, ParallelForDynamicSplitsSkewedItems) {
  // One giant item among trivial ones: the loop must split it rather than
  // serialize on whichever worker acquired it. With workers present the
  // baseline grain alone (rows / (4 * participants)) forces splits.
  ThreadPool pool(3);
  const std::vector<size_t> rows = {100000, 1, 1, 1};
  DynamicCoverage cov(rows);
  std::atomic<size_t> chunk_calls{0};
  auto stats = pool.ParallelForDynamic(
      rows, 64, [&](size_t i, size_t b, size_t e, size_t w) {
        (void)w;
        chunk_calls.fetch_add(1);
        cov.Cover(i, b, e);
      });
  cov.ExpectExact(rows);
  EXPECT_GT(chunk_calls.load(), 4u);
  EXPECT_GT(stats.splits, 0u);
}

TEST(ThreadPoolTest, ParallelForDynamicRethrowsBodyException) {
  ThreadPool pool(3);
  const std::vector<size_t> rows = {512, 512, 512};
  EXPECT_THROW(
      pool.ParallelForDynamic(rows, 16,
                              [&](size_t i, size_t b, size_t, size_t) {
                                if (i == 1 && b == 0) {
                                  throw std::runtime_error("chunk boom");
                                }
                              }),
      std::runtime_error);
  // Barrier held: the pool is reusable.
  std::atomic<size_t> total{0};
  pool.ParallelForDynamic(rows, 16,
                          [&](size_t, size_t b, size_t e, size_t) {
                            total.fetch_add(e - b);
                          });
  EXPECT_EQ(total.load(), 1536u);
}

TEST(ThreadPoolTest, ParallelForDynamicEmptyIsNoop) {
  ThreadPool pool(2);
  size_t calls = 0;
  auto stats = pool.ParallelForDynamic(
      {}, 8, [&](size_t, size_t, size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0u);
  EXPECT_EQ(stats.steals, 0u);
  EXPECT_EQ(stats.parks, 0u);
}

TEST(ThreadPoolTest, ParallelForDynamicParksInsteadOfSpinning) {
  // One splittable item with slow chunks: hungry participants find every
  // deque empty between sheds, so they park on the loop's condition
  // variable. The regression surface is the wakeup protocol — a missed
  // wakeup would hang this loop (a parked worker sleeping through the
  // shed or the final drain), and a lost chunk would fail the coverage
  // check. How often parking actually happens is timing-dependent, so
  // the counter itself is only read, not asserted.
  ThreadPool pool(3);
  const std::vector<size_t> rows = {4096};
  DynamicCoverage cov(rows);
  auto stats = pool.ParallelForDynamic(
      rows, /*min_grain=*/64, [&](size_t i, size_t b, size_t e, size_t w) {
        (void)w;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        cov.Cover(i, b, e);
      });
  cov.ExpectExact(rows);
  EXPECT_GE(stats.parks, 0u);

  // Parked workers must also wake on the drain event itself: a loop
  // whose only chunk never splits ends with every other participant
  // parked until the final completion publishes.
  std::atomic<size_t> covered{0};
  auto tail = pool.ParallelForDynamic(
      {100}, /*min_grain=*/4096, [&](size_t, size_t b, size_t e, size_t) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        covered.fetch_add(e - b);
      });
  EXPECT_EQ(covered.load(), 100u);
  EXPECT_EQ(tail.splits, 0u);
}

}  // namespace
}  // namespace inflog
