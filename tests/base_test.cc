// Unit tests for src/base: Status/Result, strings, deterministic RNG.

#include <gtest/gtest.h>

#include "src/base/result.h"
#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/base/strings.h"

namespace inflog {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad arity");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad arity");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad arity");
}

TEST(StatusTest, AllCodesRender) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "ResourceExhausted");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

Status FailingOp() { return Status::NotFound("missing"); }
Status Passthrough() {
  INFLOG_RETURN_IF_ERROR(FailingOp());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(Passthrough().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> HalfOf(int n) {
  if (n % 2 != 0) return Status::InvalidArgument("odd");
  return n / 2;
}
Result<int> QuarterOf(int n) {
  INFLOG_ASSIGN_OR_RETURN(const int half, HalfOf(n));
  return HalfOf(half);
}

TEST(ResultTest, AssignOrReturnChains) {
  ASSERT_TRUE(QuarterOf(8).ok());
  EXPECT_EQ(*QuarterOf(8), 2);
  EXPECT_FALSE(QuarterOf(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(QuarterOf(7).ok());
}

TEST(StringsTest, StrCat) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringsTest, StrJoin) {
  std::vector<int> v{1, 2, 3};
  EXPECT_EQ(StrJoin(v, ","), "1,2,3");
  EXPECT_EQ(StrJoin(std::vector<int>{}, ","), "");
}

TEST(StringsTest, StrSplitDropsEmpty) {
  auto parts = StrSplit("a,,b,c,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 5);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(11);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  auto original = v;
  rng.Shuffle(&v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
}

}  // namespace
}  // namespace inflog
