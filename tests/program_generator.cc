#include "tests/program_generator.h"

namespace inflog {
namespace testing {

namespace {

struct PredSpec {
  std::string name;
  int arity;
  int layer;
};

const char* const kVarNames[] = {"X", "Y", "Z", "W", "U", "V"};
constexpr size_t kMaxVars = sizeof(kVarNames) / sizeof(kVarNames[0]);

std::string JoinArgs(const std::vector<std::string>& args) {
  std::string out;
  for (const std::string& a : args) {
    if (!out.empty()) out += ",";
    out += a;
  }
  return out;
}

}  // namespace

GeneratedProgram GenerateProgram(Rng* rng, const GeneratorOptions& options) {
  const int num_layers =
      options.min_layers +
      static_cast<int>(rng->Uniform(options.max_layers - options.min_layers + 1));
  std::vector<PredSpec> preds;
  for (int layer = 0; layer < num_layers; ++layer) {
    const int count = 1 + static_cast<int>(rng->Uniform(2));
    for (int i = 0; i < count; ++i) {
      PredSpec p;
      p.name = "P" + std::to_string(layer) + (i == 0 ? "" : "b");
      p.arity = 1 + static_cast<int>(rng->Uniform(2));
      p.layer = layer;
      preds.push_back(std::move(p));
    }
  }

  auto constant = [&] {
    return "c" + std::to_string(rng->Uniform(options.domain_size));
  };

  std::string text;
  for (const PredSpec& pred : preds) {
    const int num_rules = 1 + static_cast<int>(rng->Uniform(2));
    for (int r = 0; r < num_rules; ++r) {
      size_t num_vars = 0;
      std::vector<std::string> bound;
      std::vector<std::string> body;
      auto atom_args = [&](int arity) {
        std::vector<std::string> args;
        for (int j = 0; j < arity; ++j) {
          if (rng->Bernoulli(options.constant_probability)) {
            args.push_back(constant());
          } else if (!bound.empty() && (num_vars == kMaxVars ||
                                        rng->Bernoulli(0.45))) {
            args.push_back(bound[rng->Uniform(bound.size())]);
          } else {
            args.push_back(kVarNames[num_vars++]);
          }
        }
        return args;
      };
      auto bind = [&](const std::vector<std::string>& args) {
        for (const std::string& a : args) {
          if (a[0] >= 'A' && a[0] <= 'Z') {
            bool seen = false;
            for (const std::string& b : bound) seen = seen || b == a;
            if (!seen) bound.push_back(a);
          }
        }
      };
      // 1-2 positive atoms: the EDB, a lower layer, or the same layer
      // (same-layer references make the program recursive).
      const int num_pos = 1 + static_cast<int>(rng->Uniform(2));
      for (int a = 0; a < num_pos; ++a) {
        std::string src_name;
        int src_arity;
        const uint64_t kind = rng->Uniform(10);
        std::vector<const PredSpec*> pool;
        if (kind >= 5) {
          for (const PredSpec& q : preds) {
            if ((kind >= 8 && q.layer == pred.layer) ||
                (kind < 8 && q.layer < pred.layer)) {
              pool.push_back(&q);
            }
          }
        }
        if (pool.empty()) {
          if (options.unary_edb && rng->Bernoulli(0.25)) {
            src_name = "S";
            src_arity = 1;
          } else {
            src_name = "E";
            src_arity = 2;
          }
        } else {
          const PredSpec* q = pool[rng->Uniform(pool.size())];
          src_name = q->name;
          src_arity = q->arity;
        }
        const std::vector<std::string> args = atom_args(src_arity);
        body.push_back(src_name + "(" + JoinArgs(args) + ")");
        bind(args);
      }
      // Optional negated atom into a strictly lower layer or the EDB;
      // arguments only from bound variables or constants, so rules stay
      // range-restricted.
      if (options.allow_negation && rng->Bernoulli(0.45)) {
        std::vector<const PredSpec*> pool;
        for (const PredSpec& q : preds) {
          if (q.layer < pred.layer) pool.push_back(&q);
        }
        std::string neg_name = "E";
        int neg_arity = 2;
        if (!pool.empty() && rng->Bernoulli(0.7)) {
          const PredSpec* q = pool[rng->Uniform(pool.size())];
          neg_name = q->name;
          neg_arity = q->arity;
        }
        std::vector<std::string> args;
        for (int j = 0; j < neg_arity; ++j) {
          if (bound.empty() || rng->Bernoulli(options.constant_probability)) {
            args.push_back(constant());
          } else {
            args.push_back(bound[rng->Uniform(bound.size())]);
          }
        }
        body.push_back("!" + neg_name + "(" + JoinArgs(args) + ")");
      }
      // Occasional inequality between two bound variables.
      if (bound.size() >= 2 && rng->Bernoulli(0.15)) {
        const size_t i = rng->Uniform(bound.size());
        size_t j = rng->Uniform(bound.size() - 1);
        if (j >= i) ++j;
        body.push_back(bound[i] + " != " + bound[j]);
      }
      std::vector<std::string> head_args;
      for (int j = 0; j < pred.arity; ++j) {
        if (bound.empty() || rng->Bernoulli(0.06)) {
          head_args.push_back(constant());
        } else {
          head_args.push_back(bound[rng->Uniform(bound.size())]);
        }
      }
      text += pred.name + "(" + JoinArgs(head_args) + ") :- " +
              JoinArgs(body) + ".\n";
    }
  }

  GeneratedProgram out;
  // Outputs: a goal-directed query rule over a high-layer predicate
  // (the magic-sets shape), or 1-2 top-layer predicates directly.
  const PredSpec* top = &preds.back();
  std::vector<const PredSpec*> high;
  for (const PredSpec& q : preds) {
    if (q.layer >= num_layers / 2) high.push_back(&q);
  }
  if (options.constant_probability > 0 &&
      rng->Bernoulli(options.point_query_probability)) {
    const PredSpec* target = high[rng->Uniform(high.size())];
    if (target->arity == 2) {
      text += "Qq(Y) :- " + target->name + "(" + constant() + ",Y).\n";
    } else {
      text += "Qq(X) :- E(" + constant() + ",X), " + target->name + "(X).\n";
    }
    out.outputs.push_back("Qq");
    if (rng->Bernoulli(0.3) && top->name != target->name) {
      out.outputs.push_back(top->name);
    }
  } else {
    out.outputs.push_back(top->name);
    if (high.size() > 1 && rng->Bernoulli(0.4)) {
      const PredSpec* second = high[rng->Uniform(high.size())];
      if (second->name != top->name) out.outputs.push_back(second->name);
    }
  }
  out.program_text = std::move(text);

  std::string facts;
  for (int i = 0; i < options.num_edges; ++i) {
    facts += "E(c" + std::to_string(rng->Uniform(options.domain_size)) +
             ",c" + std::to_string(rng->Uniform(options.domain_size)) + ").\n";
  }
  if (options.unary_edb) {
    bool any = false;
    for (int d = 0; d < options.domain_size; ++d) {
      if (rng->Bernoulli(0.5)) {
        facts += "S(c" + std::to_string(d) + ").\n";
        any = true;
      }
    }
    if (!any) facts += "S(c0).\n";
  }
  out.facts_text = std::move(facts);
  return out;
}

std::string RandomStratifiedProgramText(Rng* rng) {
  GeneratorOptions options;
  options.min_layers = 2;
  options.max_layers = 3;
  options.allow_negation = true;
  // The property suite's facts come from a shared random digraph
  // (E/2 only), so no constants, no S/1, no extra query predicate.
  options.constant_probability = 0;
  options.unary_edb = false;
  options.point_query_probability = 0;
  return GenerateProgram(rng, options).program_text;
}

}  // namespace testing
}  // namespace inflog
