// Tests for the graph substrate: generators, oracles, and the relational
// round-trip.

#include <gtest/gtest.h>

#include "src/graphs/digraph.h"

namespace inflog {
namespace {

TEST(DigraphTest, AddEdgeDedups) {
  Digraph g(3);
  EXPECT_TRUE(g.AddEdge(0, 1));
  EXPECT_FALSE(g.AddEdge(0, 1));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
}

TEST(GeneratorsTest, PathShape) {
  const Digraph g = PathGraph(5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(4, 0));
}

TEST(GeneratorsTest, CycleShape) {
  const Digraph g = CycleGraph(4);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.HasEdge(3, 0));
}

TEST(GeneratorsTest, DisjointCyclesAreDisjoint) {
  const Digraph g = DisjointCycles(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_EQ(g.num_edges(), 12u);
  // No edge crosses components.
  for (const auto& [u, v] : g.Edges()) {
    EXPECT_EQ(u / 4, v / 4);
  }
}

TEST(GeneratorsTest, CompleteGraphEdgeCount) {
  const Digraph g = CompleteGraph(5);
  EXPECT_EQ(g.num_edges(), 20u);
}

TEST(GeneratorsTest, RandomDigraphDeterministicUnderSeed) {
  Rng a(5), b(5);
  const Digraph g1 = RandomDigraph(8, 0.3, &a);
  const Digraph g2 = RandomDigraph(8, 0.3, &b);
  EXPECT_EQ(g1.Edges(), g2.Edges());
}

TEST(GeneratorsTest, HypercubeDegree) {
  const Digraph g = Hypercube(3);
  EXPECT_EQ(g.num_vertices(), 8u);
  EXPECT_EQ(g.num_edges(), 24u);  // 8 vertices × 3 out-neighbors
  EXPECT_TRUE(g.HasEdge(0, 4));
  EXPECT_FALSE(g.HasEdge(0, 3));  // differs in two bits
}

TEST(OraclesTest, BfsDistancesOnPath) {
  const auto dist = BfsAllPairs(PathGraph(4));
  EXPECT_EQ(dist[0][3], 3);
  EXPECT_EQ(dist[3][0], -1);
  EXPECT_EQ(dist[1][1], 0);
}

TEST(OraclesTest, BfsDistancesOnCycle) {
  const auto dist = BfsAllPairs(CycleGraph(5));
  EXPECT_EQ(dist[0][4], 4);
  EXPECT_EQ(dist[4][0], 1);
}

TEST(OraclesTest, TransitiveClosureOnPathAndCycle) {
  const auto tc_path = TransitiveClosure(PathGraph(3));
  EXPECT_TRUE(tc_path[0][2]);
  EXPECT_FALSE(tc_path[2][0]);
  EXPECT_FALSE(tc_path[0][0]);
  const auto tc_cycle = TransitiveClosure(CycleGraph(3));
  for (int u = 0; u < 3; ++u) {
    for (int v = 0; v < 3; ++v) EXPECT_TRUE(tc_cycle[u][v]);
  }
}

TEST(OraclesTest, ThreeColorability) {
  EXPECT_TRUE(IsThreeColorable(CycleGraph(5)));    // odd cycle: 3 colors ok
  EXPECT_TRUE(IsThreeColorable(CycleGraph(4)));
  EXPECT_TRUE(IsThreeColorable(CompleteGraph(3)));
  EXPECT_FALSE(IsThreeColorable(CompleteGraph(4)));
  EXPECT_TRUE(IsThreeColorable(PathGraph(10)));
  EXPECT_TRUE(IsThreeColorable(Hypercube(3)));     // bipartite
}

TEST(OraclesTest, OddWheelNotThreeColorable) {
  // C₅ plus a hub adjacent to every rim vertex needs 4 colors.
  Digraph g = CycleGraph(5);
  Digraph wheel(6);
  for (const auto& [u, v] : g.Edges()) wheel.AddEdge(u, v);
  for (int v = 0; v < 5; ++v) wheel.AddEdge(5, v);
  EXPECT_FALSE(IsThreeColorable(wheel));
}

TEST(OraclesTest, SelfLoopKillsColoring) {
  Digraph g(2);
  g.AddEdge(0, 0);
  EXPECT_FALSE(IsThreeColorable(g));
}

TEST(OraclesTest, HamiltonCircuitCounts) {
  EXPECT_EQ(CountHamiltonCircuits(CycleGraph(5)), 1u);
  EXPECT_EQ(CountHamiltonCircuits(PathGraph(4)), 0u);
  EXPECT_EQ(CountHamiltonCircuits(CompleteGraph(3)), 2u);
  EXPECT_EQ(CountHamiltonCircuits(CompleteGraph(4)), 6u);  // (n-1)!
}

TEST(RelationalTest, GraphDatabaseRoundTrip) {
  Rng rng(77);
  const Digraph g = RandomDigraph(6, 0.4, &rng);
  Database db;
  GraphToDatabase(g, "E", &db);
  EXPECT_EQ(db.universe().size(), 6u);
  auto back = GraphFromDatabase(db, "E");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->Edges(), g.Edges());
}

TEST(RelationalTest, IsolatedVerticesSurviveRoundTrip) {
  Digraph g(4);
  g.AddEdge(0, 1);  // vertices 2, 3 isolated
  Database db;
  GraphToDatabase(g, "E", &db);
  EXPECT_EQ(db.universe().size(), 4u);
  auto back = GraphFromDatabase(db, "E");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_vertices(), 4u);
  EXPECT_EQ(back->num_edges(), 1u);
}

}  // namespace
}  // namespace inflog
