// Cross-semantics property sweeps on randomized inputs:
//   * π_COL fixpoints are in bijection with proper 3-colorings, so the
//     fixpoint count equals the chromatic count P(G,3) — checked against
//     a brute-force coloring counter;
//   * on random stratified programs, stratified = well-founded (total) =
//     the unique stable model, and the inflationary semantics contains
//     the stratified one stage-wise for the positive stratum;
//   * the inflationary semantics is insensitive to rule order (Θ is a
//     set-level operator).

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/base/strings.h"
#include "src/eval/inflationary.h"
#include "src/eval/stable.h"
#include "src/eval/stratified.h"
#include "src/eval/wellfounded.h"
#include "src/fixpoint/analysis.h"
#include "src/reductions/three_coloring.h"
#include "tests/program_generator.h"
#include "tests/test_util.h"

namespace inflog {
namespace {

using testing::DbFromGraph;
using testing::MustProgram;

/// Brute-force count of proper 3-colorings (edge directions ignored).
uint64_t CountColorings(const Digraph& g) {
  const size_t n = g.num_vertices();
  INFLOG_CHECK(n <= 12);
  std::vector<std::vector<bool>> adjacent(n, std::vector<bool>(n, false));
  for (const auto& [u, v] : g.Edges()) {
    adjacent[u][v] = adjacent[v][u] = true;
  }
  uint64_t count = 0;
  std::vector<int> colors(n, 0);
  uint64_t total = 1;
  for (size_t i = 0; i < n; ++i) total *= 3;
  for (uint64_t code = 0; code < total; ++code) {
    uint64_t c = code;
    for (size_t v = 0; v < n; ++v) {
      colors[v] = static_cast<int>(c % 3);
      c /= 3;
    }
    bool proper = true;
    for (size_t u = 0; u < n && proper; ++u) {
      if (adjacent[u][u]) proper = false;
      for (size_t v = u + 1; v < n && proper; ++v) {
        if (adjacent[u][v] && colors[u] == colors[v]) proper = false;
      }
    }
    if (proper) ++count;
  }
  return count;
}

class ChromaticCount : public ::testing::TestWithParam<int> {};

TEST_P(ChromaticCount, PiColFixpointsCountProperColorings) {
  const int seed = GetParam();
  Digraph g(0);
  uint64_t expected = 0;
  switch (seed) {
    case 0:
      g = CycleGraph(4);
      expected = 18;  // P(C4, 3) = 2^4 + 2
      break;
    case 1:
      g = CycleGraph(5);
      expected = 30;  // P(C5, 3) = 2^5 - 2
      break;
    case 2:
      g = CompleteGraph(3);
      expected = 6;  // 3!
      break;
    case 3:
      g = PathGraph(4);
      expected = 3 * 2 * 2 * 2;  // trees: 3·2^(n-1)
      break;
    default: {
      Rng rng(seed * 101 + 7);
      g = RandomDigraph(4 + rng.Uniform(2), 0.4, &rng);
      expected = CountColorings(g);
      break;
    }
  }
  ASSERT_EQ(CountColorings(g), expected);
  auto symbols = std::make_shared<SymbolTable>();
  Program pi_col = PiColProgram(symbols);
  Database db = DbFromGraph(g, symbols);
  auto analyzer = FixpointAnalyzer::Create(&pi_col, &db);
  ASSERT_TRUE(analyzer.ok());
  auto count = analyzer->CountFixpoints();
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, expected) << g.ToString();
}

INSTANTIATE_TEST_SUITE_P(Graphs, ChromaticCount, ::testing::Range(0, 9));

class StratifiedAgreement : public ::testing::TestWithParam<int> {};

TEST_P(StratifiedAgreement, StratifiedEqualsWfsEqualsUniqueStable) {
  const int seed = GetParam();
  Rng rng(seed * 577 + 23);
  // Shared generator (tests/program_generator.h): layered, stratifiable
  // by construction, E/2-only EDB, no constants.
  const std::string text = testing::RandomStratifiedProgramText(&rng);
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram(text, symbols);
  ASSERT_TRUE(AnalyzeProgram(p).stratifiable) << text;
  const Digraph g = RandomDigraph(3 + rng.Uniform(3), 0.4, &rng);
  Database db = DbFromGraph(g, symbols);

  auto strat = EvalStratified(p, db);
  ASSERT_TRUE(strat.ok()) << text;
  auto wf = EvalWellFounded(p, db);
  ASSERT_TRUE(wf.ok()) << text;
  EXPECT_TRUE(wf->total) << text;
  EXPECT_EQ(wf->true_state, strat->state) << text;
  auto stable = EnumerateStableModels(p, db);
  ASSERT_TRUE(stable.ok()) << text;
  ASSERT_EQ(stable->models.size(), 1u) << text;
  EXPECT_EQ(stable->models[0], strat->state) << text;
  // The stratified model is a fixpoint of Θ (the classic supportedness
  // of the perfect model).
  auto analyzer = FixpointAnalyzer::Create(&p, &db);
  ASSERT_TRUE(analyzer.ok());
  auto is_fixpoint = analyzer->VerifyFixpoint(strat->state);
  ASSERT_TRUE(is_fixpoint.ok());
  EXPECT_TRUE(*is_fixpoint) << text;
}

INSTANTIATE_TEST_SUITE_P(Seeds, StratifiedAgreement,
                         ::testing::Range(0, 15));

class RuleOrderInvariance : public ::testing::TestWithParam<int> {};

TEST_P(RuleOrderInvariance, InflationaryIgnoresRuleOrder) {
  const int seed = GetParam();
  Rng rng(seed * 31 + 2);
  std::vector<std::string> rules = {
      "S(X,Y) :- E(X,Y).",
      "S(X,Y) :- E(X,Z), S(Z,Y).",
      "T(X) :- E(Y,X), !T(Y).",
      "U(X) :- S(X,X), !T(X).",
  };
  const Digraph g = RandomDigraph(5, 0.35, &rng);
  auto symbols = std::make_shared<SymbolTable>();
  Program original = MustProgram(StrJoin(rules, "\n"), symbols);
  Database db = DbFromGraph(g, symbols);
  auto base = EvalInflationary(original, db);
  ASSERT_TRUE(base.ok());
  rng.Shuffle(&rules);
  // Reparse shuffled rules with the same symbols; IDB indexes may
  // differ, so compare per-predicate.
  Program shuffled = MustProgram(StrJoin(rules, "\n"), symbols);
  auto permuted = EvalInflationary(shuffled, db);
  ASSERT_TRUE(permuted.ok());
  for (const char* pred : {"S", "T", "U"}) {
    EXPECT_EQ(testing::IdbRelation(original, base->state, pred),
              testing::IdbRelation(shuffled, permuted->state, pred))
        << pred;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuleOrderInvariance,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace inflog
