// Tests for the Engine facade and the Hamilton-circuit US pipeline.

#include <gtest/gtest.h>

#include "src/core/engine.h"
#include "src/reductions/hamilton.h"
#include "src/reductions/sat_db.h"
#include "src/sat/solver.h"
#include "tests/test_util.h"

namespace inflog {
namespace {

TEST(EngineTest, EndToEndPi1) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgramText("T(X) :- E(Y,X), !T(Y).").ok());
  ASSERT_TRUE(engine.LoadDatabaseText("E(1,2). E(2,3). E(3,4).").ok());
  auto result = engine.Inflationary();
  ASSERT_TRUE(result.ok());
  auto t = engine.RelationOf(result->state, "T");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->size(), 3u);  // {2,3,4}: vertices with predecessors
  auto analyzer = engine.MakeAnalyzer();
  ASSERT_TRUE(analyzer.ok());
  auto unique = analyzer->UniqueFixpoint();
  ASSERT_TRUE(unique.ok());
  EXPECT_EQ(*unique, UniqueStatus::kUnique);
}

TEST(EngineTest, SemanticsKindNamesRoundTrip) {
  for (SemanticsKind kind :
       {SemanticsKind::kInflationary, SemanticsKind::kStratified,
        SemanticsKind::kWellFounded, SemanticsKind::kStable}) {
    auto parsed = ParseSemanticsKind(SemanticsKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParseSemanticsKind("nope").ok());
  EXPECT_EQ(ParseSemanticsKind("nope").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineTest, UnifiedEvaluateMatchesTypedEntryPoints) {
  Engine engine;
  // Semipositive program (negation touches only the EDB), so all four
  // semantics provably coincide: reachability from the non-blocked seeds.
  ASSERT_TRUE(engine
                  .LoadProgramText(
                      "R(X) :- S(X), !B(X).\n"
                      "R(Y) :- R(X), E(X,Y).\n")
                  .ok());
  ASSERT_TRUE(engine
                  .LoadDatabaseText(
                      "S(1). S(4). B(4). E(1,2). E(2,3). E(4,5).\n")
                  .ok());
  for (SemanticsKind kind :
       {SemanticsKind::kInflationary, SemanticsKind::kStratified,
        SemanticsKind::kWellFounded, SemanticsKind::kStable}) {
    auto outcome = engine.Evaluate(kind);
    ASSERT_TRUE(outcome.ok()) << SemanticsKindName(kind);
    EXPECT_EQ(outcome->kind, kind);
  }
  // The unified answer matches each typed entry point's canonical state.
  auto inflationary = engine.Inflationary();
  ASSERT_TRUE(inflationary.ok());
  EXPECT_EQ(engine.Evaluate(SemanticsKind::kInflationary)->state(),
            inflationary->state);
  auto stratified = engine.Stratified();
  ASSERT_TRUE(stratified.ok());
  EXPECT_EQ(engine.Evaluate(SemanticsKind::kStratified)->state(),
            stratified->state);
  auto wellfounded = engine.WellFounded();
  ASSERT_TRUE(wellfounded.ok());
  EXPECT_EQ(engine.Evaluate(SemanticsKind::kWellFounded)->state(),
            wellfounded->true_state);
  auto stable = engine.StableModels();
  ASSERT_TRUE(stable.ok());
  ASSERT_EQ(stable->models.size(), 1u);
  EXPECT_EQ(engine.Evaluate(SemanticsKind::kStable)->state(),
            stable->models.front());
  // On this stratified program all four agree.
  EXPECT_EQ(inflationary->state, stratified->state);
  EXPECT_EQ(stratified->state, wellfounded->true_state);
  EXPECT_EQ(stratified->state, stable->models.front());
}

TEST(EngineTest, UnifiedEvaluateDetailCarriesSemanticsSpecifics) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgramText("T(X) :- E(Y,X), !T(Y).").ok());
  ASSERT_TRUE(engine.LoadDatabaseText("E(1,2). E(2,3). E(3,4).").ok());
  auto outcome = engine.Evaluate(SemanticsKind::kInflationary);
  ASSERT_TRUE(outcome.ok());
  const auto* detail = std::get_if<InflationaryResult>(&outcome->detail);
  ASSERT_NE(detail, nullptr);
  EXPECT_TRUE(detail->converged);
  EXPECT_GT(detail->num_stages, 0u);
  // Non-stratifiable: the stratified path must fail through Evaluate too.
  auto stratified = engine.Evaluate(SemanticsKind::kStratified);
  EXPECT_FALSE(stratified.ok());
  EXPECT_EQ(stratified.status().code(), StatusCode::kFailedPrecondition);
}

TEST(EngineTest, RequiresProgramBeforeEvaluation) {
  Engine engine;
  EXPECT_FALSE(engine.Inflationary().ok());
  EXPECT_EQ(engine.Inflationary().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(engine.program().ok());
}

TEST(EngineTest, LoadProgramReplacesPrevious) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgramText("A(X) :- E(X,Y).").ok());
  ASSERT_TRUE(engine.LoadProgramText("B(X) :- E(Y,X).").ok());
  auto program = engine.program();
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE((*program)->FindPredicate("B").ok());
  EXPECT_FALSE((*program)->FindPredicate("A").ok());
}

TEST(EngineTest, DatabaseTextIsAdditive) {
  Engine engine;
  ASSERT_TRUE(engine.LoadDatabaseText("E(1,2).").ok());
  ASSERT_TRUE(engine.LoadDatabaseText("E(2,3).").ok());
  EXPECT_EQ((*engine.database().GetRelation("E"))->size(), 2u);
}

TEST(EngineTest, RejectsForeignSymbolTable) {
  Engine engine;
  Program foreign = testing::MustProgram("T(X) :- E(X,Y).");
  EXPECT_FALSE(engine.LoadProgram(std::move(foreign)).ok());
}

TEST(EngineTest, DescribeSummarizes) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgramText("T(X) :- E(Y,X), !T(Y).").ok());
  auto description = engine.Describe();
  ASSERT_TRUE(description.ok());
  EXPECT_NE(description->find("EDB: E/2"), std::string::npos)
      << *description;
  EXPECT_NE(description->find("IDB: T/1"), std::string::npos);
  EXPECT_NE(description->find("stratifiable: no"), std::string::npos);
}

TEST(EngineTest, RelationOfRejectsEdb) {
  Engine engine;
  ASSERT_TRUE(engine.LoadProgramText("T(X) :- E(Y,X).").ok());
  ASSERT_TRUE(engine.LoadDatabaseText("E(1,2).").ok());
  auto result = engine.Inflationary();
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(engine.RelationOf(result->state, "E").ok());
  EXPECT_FALSE(engine.RelationOf(result->state, "Nope").ok());
}

TEST(EngineTest, AllSemanticsOnOneProgram) {
  Engine engine;
  ASSERT_TRUE(engine
                  .LoadProgramText(
                      "R(X,Y) :- E(X,Y).\n"
                      "R(X,Y) :- E(X,Z), R(Z,Y).\n"
                      "Un(X,Y) :- E(Y,X), !R(X,Y).\n")
                  .ok());
  ASSERT_TRUE(engine.LoadDatabaseText("E(1,2). E(2,3).").ok());
  auto inf = engine.Inflationary();
  auto strat = engine.Stratified();
  auto wf = engine.WellFounded();
  auto stable = engine.StableModels();
  ASSERT_TRUE(inf.ok() && strat.ok() && wf.ok() && stable.ok());
  // Stratified program: all four agree on the (total) model.
  EXPECT_TRUE(wf->total);
  EXPECT_EQ(wf->true_state, strat->state);
  ASSERT_EQ(stable->models.size(), 1u);
  EXPECT_EQ(stable->models[0], strat->state);
}

TEST(EngineTest, RejectUnsafeNegationGatesAllFourSemantics) {
  // The toggle-style rule has W only under negation. By default every
  // semantics evaluates it (active-domain reading); with
  // reject_unsafe_negation the unified entry point refuses it up front —
  // including for the grounded pipelines, which build no EvalContext.
  Engine engine;
  ASSERT_TRUE(engine.LoadProgramText("T(X) :- E(Y,X), !T(W).").ok());
  ASSERT_TRUE(engine.LoadDatabaseText("E(1,2). E(2,3).").ok());
  for (SemanticsKind kind :
       {SemanticsKind::kInflationary, SemanticsKind::kStratified,
        SemanticsKind::kWellFounded, SemanticsKind::kStable}) {
    EvalOptions lenient;
    auto accepted = engine.Evaluate(kind, lenient);
    if (kind != SemanticsKind::kStratified) {  // not stratifiable
      EXPECT_TRUE(accepted.ok()) << SemanticsKindName(kind);
    }
    EvalOptions strict;
    strict.reject_unsafe_negation = true;
    auto rejected = engine.Evaluate(kind, strict);
    ASSERT_FALSE(rejected.ok()) << SemanticsKindName(kind);
    EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(rejected.status().message().find("variable(s) W"),
              std::string::npos)
        << rejected.status().message();
  }
  // Negation-safe programs pass the strict mode untouched.
  Engine safe;
  ASSERT_TRUE(safe.LoadProgramText("T(X) :- E(Y,X), !T(Y).").ok());
  ASSERT_TRUE(safe.LoadDatabaseText("E(1,2). E(2,3).").ok());
  EvalOptions strict;
  strict.reject_unsafe_negation = true;
  EXPECT_TRUE(safe.Evaluate(SemanticsKind::kInflationary, strict).ok());
}

// --- Hamilton circuits through π_SAT (the US-typical example). ---

TEST(HamiltonTest, CnfModelsAreCircuits) {
  const Digraph g = CycleGraph(5);
  auto cnf = HamiltonToCnf(g);
  ASSERT_TRUE(cnf.ok());
  sat::Solver solver;
  solver.AddCnf(*cnf);
  ASSERT_EQ(solver.Solve(), sat::SolveResult::kSat);
  auto circuit = DecodeHamiltonCircuit(g, solver.Model());
  ASSERT_TRUE(circuit.ok()) << circuit.status().ToString();
  EXPECT_EQ((*circuit)[0], 0u);
}

TEST(HamiltonTest, NoCircuitOnPath) {
  auto cnf = HamiltonToCnf(PathGraph(4));
  ASSERT_TRUE(cnf.ok());
  sat::Solver solver;
  solver.AddCnf(*cnf);
  EXPECT_EQ(solver.Solve(), sat::SolveResult::kUnsat);
}

class HamiltonCounts : public ::testing::TestWithParam<int> {};

TEST_P(HamiltonCounts, ModelCountEqualsCircuitCount) {
  const int seed = GetParam();
  Digraph g(0);
  switch (seed) {
    case 0:
      g = CycleGraph(4);
      break;
    case 1:
      g = CompleteGraph(4);
      break;
    case 2:
      g = CompleteGraph(3);
      break;
    default: {
      Rng rng(seed * 911);
      g = RandomDigraph(5, 0.5, &rng);
      break;
    }
  }
  const uint64_t expected = CountHamiltonCircuits(g);
  auto cnf = HamiltonToCnf(g);
  ASSERT_TRUE(cnf.ok());
  // Count models by enumeration.
  sat::Solver solver;
  solver.AddCnf(*cnf);
  uint64_t models = 0;
  while (solver.Solve() == sat::SolveResult::kSat && models < 1000) {
    ++models;
    sat::Clause block;
    for (sat::Var v = 0; v < cnf->num_vars; ++v) {
      block.push_back(solver.ModelValue(v) ? sat::Neg(v) : sat::Pos(v));
    }
    if (!solver.AddClause(block)) break;
  }
  EXPECT_EQ(models, expected) << g.ToString();
}

INSTANTIATE_TEST_SUITE_P(Graphs, HamiltonCounts, ::testing::Range(0, 8));

TEST(HamiltonTest, UniqueCircuitMeansUniqueFixpoint) {
  // C₄ has exactly one directed Hamilton circuit: the composed reduction
  // Hamilton → CNF → D(I) → π_SAT must yield a UNIQUE fixpoint; K₄ has
  // six, so "multiple"; L₄ has none, so "no fixpoint". Theorem 2 end to
  // end.
  struct Case {
    Digraph graph;
    UniqueStatus expected;
  } cases[] = {
      {CycleGraph(4), UniqueStatus::kUnique},
      {CompleteGraph(4), UniqueStatus::kMultiple},
      {PathGraph(4), UniqueStatus::kNoFixpoint},
  };
  for (const auto& c : cases) {
    auto cnf = HamiltonToCnf(c.graph);
    ASSERT_TRUE(cnf.ok());
    auto symbols = std::make_shared<SymbolTable>();
    Program pi_sat = PiSatProgram(symbols);
    Database db = SatToDatabase(*cnf, symbols);
    auto analyzer = FixpointAnalyzer::Create(&pi_sat, &db);
    ASSERT_TRUE(analyzer.ok());
    auto unique = analyzer->UniqueFixpoint();
    ASSERT_TRUE(unique.ok());
    EXPECT_EQ(*unique, c.expected) << c.graph.ToString();
  }
}

}  // namespace
}  // namespace inflog
