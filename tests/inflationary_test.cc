// Tests for the inflationary and stratified semantics (Section 4 of the
// paper), including Proposition 2's distance query, the coincidence with
// least fixpoints on positive programs, and naive/semi-naive stage
// equivalence.

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/eval/inflationary.h"
#include "src/eval/stratified.h"
#include "tests/test_util.h"

namespace inflog {
namespace {

using testing::DbFromGraph;
using testing::IdbRelation;
using testing::MustProgram;
using testing::UnarySet;

constexpr char kPi1[] = "T(X) :- E(Y,X), !T(Y).";
constexpr char kTc[] = "S(X,Y) :- E(X,Y).\nS(X,Y) :- E(X,Z), S(Z,Y).";
// Proposition 2's distance program: two synchronized transitive-closure
// copies plus the carrier S3.
constexpr char kDistance[] =
    "S1(X,Y) :- E(X,Y).\n"
    "S1(X,Y) :- E(X,Z), S1(Z,Y).\n"
    "S2(X,Y) :- E(X,Y).\n"
    "S2(X,Y) :- E(X,Z), S2(Z,Y).\n"
    "S3(X,Y,Xs,Ys) :- E(X,Y), !S2(Xs,Ys).\n"
    "S3(X,Y,Xs,Ys) :- E(X,Z), S1(Z,Y), !S2(Xs,Ys).\n";

InflationaryResult MustEval(const Program& p, const Database& d,
                            const InflationaryOptions& opts = {}) {
  auto r = EvalInflationary(p, d, opts);
  INFLOG_CHECK(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

TEST(InflationaryTest, ToggleSaturatesAtStageOne) {
  // For T(x) ← ¬T(y): Θ^∞ = Θ¹ = A (the paper's Section 4 example).
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram("T(X) :- !T(Y).", symbols);
  Database db = DbFromGraph(PathGraph(4), symbols);
  InflationaryResult r = MustEval(p, db);
  EXPECT_EQ(r.num_stages, 1u);
  EXPECT_EQ(UnarySet(*symbols, IdbRelation(p, r.state, "T")),
            (std::set<std::string>{"0", "1", "2", "3"}));
}

TEST(InflationaryTest, Pi1StopsAtStageOne) {
  // For π₁: Θ^∞ = Θ¹ = {x : ∃y E(y,x)} (Section 4).
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram(kPi1, symbols);
  Database db = DbFromGraph(PathGraph(4), symbols);
  InflationaryResult r = MustEval(p, db);
  EXPECT_EQ(r.num_stages, 1u);
  EXPECT_EQ(UnarySet(*symbols, IdbRelation(p, r.state, "T")),
            (std::set<std::string>{"1", "2", "3"}));
}

TEST(InflationaryTest, TransitiveClosureMatchesOracle) {
  for (size_t n : {2u, 5u, 9u}) {
    auto symbols = std::make_shared<SymbolTable>();
    Program p = MustProgram(kTc, symbols);
    Rng rng(n * 17);
    const Digraph g = RandomDigraph(n, 0.3, &rng);
    Database db = DbFromGraph(g, symbols);
    InflationaryResult r = MustEval(p, db);
    const auto tc = TransitiveClosure(g);
    const Relation& s = IdbRelation(p, r.state, "S");
    size_t expected = 0;
    for (size_t u = 0; u < n; ++u) {
      for (size_t v = 0; v < n; ++v) {
        if (!tc[u][v]) continue;
        ++expected;
        EXPECT_TRUE(s.Contains(Tuple{symbols->InternInt(u),
                                     symbols->InternInt(v)}))
            << u << "→" << v;
      }
    }
    EXPECT_EQ(s.size(), expected);
  }
}

TEST(InflationaryTest, AgreesWithLeastFixpointOnPositivePrograms) {
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram(kTc, symbols);
  Database db = DbFromGraph(CycleGraph(5), symbols);
  InflationaryResult inf = MustEval(p, db);
  auto lfp = EvalLeastFixpoint(p, db);
  ASSERT_TRUE(lfp.ok());
  EXPECT_EQ(inf.state, lfp->state);
}

TEST(InflationaryTest, LeastFixpointRejectsNegation) {
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram(kPi1, symbols);
  Database db = DbFromGraph(PathGraph(3), symbols);
  auto r = EvalLeastFixpoint(p, db);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(InflationaryTest, TupleStageEncodesDistance) {
  // In the TC program, (u,v) enters S exactly at stage d(u,v).
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram(kTc, symbols);
  const Digraph g = PathGraph(6);
  Database db = DbFromGraph(g, symbols);
  InflationaryResult r = MustEval(p, db);
  const auto dist = BfsAllPairs(g);
  const int idb = p.predicate(*p.FindPredicate("S")).idb_index;
  for (size_t u = 0; u < 6; ++u) {
    for (size_t v = 0; v < 6; ++v) {
      const size_t stage = r.TupleStage(
          idb, Tuple{symbols->InternInt(u), symbols->InternInt(v)});
      if (dist[u][v] > 0) {
        EXPECT_EQ(stage, static_cast<size_t>(dist[u][v])) << u << "→" << v;
      } else {
        EXPECT_EQ(stage, 0u) << u << "→" << v;
      }
    }
  }
}

TEST(InflationaryTest, StageCountIsDiameterForTc) {
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram(kTc, symbols);
  Database db = DbFromGraph(PathGraph(8), symbols);
  InflationaryResult r = MustEval(p, db);
  // Longest shortest path on L₈ is 7; stage 7 adds the last pair.
  EXPECT_EQ(r.num_stages, 7u);
  EXPECT_TRUE(r.converged);
}

TEST(InflationaryTest, MaxStagesCapStopsEarly) {
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram(kTc, symbols);
  Database db = DbFromGraph(PathGraph(8), symbols);
  InflationaryOptions opts;
  opts.max_stages = 3;
  InflationaryResult r = MustEval(p, db, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.num_stages, 3u);
  // After 3 stages S holds exactly the pairs at distance ≤ 3.
  EXPECT_EQ(IdbRelation(p, r.state, "S").size(), 7u + 6u + 5u);
}

// --- Naive vs. semi-naive: identical stage sets, stage by stage. ---

class NaiveVsSemiNaive : public ::testing::TestWithParam<int> {};

TEST_P(NaiveVsSemiNaive, StageSequencesCoincide) {
  const int seed = GetParam();
  Rng rng(seed);
  const size_t n = 3 + rng.Uniform(6);
  const Digraph g = RandomDigraph(n, 0.25 + 0.1 * (seed % 4), &rng);
  // A program mixing recursion, negation, and an unsafe toggle.
  constexpr char kMixed[] =
      "S(X,Y) :- E(X,Y).\n"
      "S(X,Y) :- E(X,Z), S(Z,Y).\n"
      "T(X) :- E(Y,X), !T(Y).\n"
      "U(X,Y) :- S(X,Y), !S(Y,X).\n"
      "W(X) :- !S(X,X), !W(X).\n";
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram(kMixed, symbols);
  Database db = DbFromGraph(g, symbols);
  InflationaryOptions semi, naive;
  naive.use_seminaive = false;
  InflationaryResult a = MustEval(p, db, semi);
  InflationaryResult b = MustEval(p, db, naive);
  EXPECT_EQ(a.state, b.state);
  EXPECT_EQ(a.num_stages, b.num_stages);
  EXPECT_EQ(a.stage_sizes, b.stage_sizes);
  // Semi-naive never does more derivation work than naive.
  EXPECT_LE(a.stats.derivations, b.stats.derivations);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NaiveVsSemiNaive,
                         ::testing::Range(0, 12));

// --- Proposition 2: the distance query. ---

class DistanceQuery : public ::testing::TestWithParam<int> {};

TEST_P(DistanceQuery, InflationaryComputesDistanceComparison) {
  const int seed = GetParam();
  Rng rng(seed * 101 + 7);
  const size_t n = 3 + rng.Uniform(4);
  const Digraph g = seed == 0   ? PathGraph(4)
                    : seed == 1 ? CycleGraph(5)
                                : RandomDigraph(n, 0.3, &rng);
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram(kDistance, symbols);
  Database db = DbFromGraph(g, symbols);
  InflationaryResult r = MustEval(p, db);
  const auto dist = BfsAllPairs(g);
  const size_t nv = g.num_vertices();
  const Relation& s3 = IdbRelation(p, r.state, "S3");

  auto d = [&](size_t u, size_t v) {
    // Path distance along nonempty paths; BFS dist 0 on the diagonal means
    // "no nonempty path" unless a cycle through u exists, handled below.
    if (u != v) return dist[u][v];
    int best = -1;
    for (uint32_t w : g.Successors(u)) {
      if (dist[w][u] >= 0) {
        const int len = 1 + dist[w][u];
        if (best < 0 || len < best) best = len;
      }
    }
    return best;
  };

  size_t expected_count = 0;
  for (size_t x = 0; x < nv; ++x) {
    for (size_t y = 0; y < nv; ++y) {
      const int dxy = d(x, y);
      for (size_t xs = 0; xs < nv; ++xs) {
        for (size_t ys = 0; ys < nv; ++ys) {
          const int dst = d(xs, ys);
          const bool expected = dxy >= 0 && (dst < 0 || dxy <= dst);
          if (expected) ++expected_count;
          const Tuple t{symbols->InternInt(x), symbols->InternInt(y),
                        symbols->InternInt(xs), symbols->InternInt(ys)};
          EXPECT_EQ(s3.Contains(t), expected)
              << "d(" << x << "," << y << ")=" << dxy << " d*(" << xs << ","
              << ys << ")=" << dst;
        }
      }
    }
  }
  EXPECT_EQ(s3.size(), expected_count);
}

INSTANTIATE_TEST_SUITE_P(Graphs, DistanceQuery, ::testing::Range(0, 8));

TEST(StratifiedTest, DistanceProgramReadStratifiedGivesTcAndNotTc) {
  // The same π under the stratified semantics computes
  // {(x,y,x*,y*) : TC(x,y) ∧ ¬TC(x*,y*)} — the paper's point that the two
  // semantics differ.
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram(kDistance, symbols);
  const Digraph g = PathGraph(3);
  Database db = DbFromGraph(g, symbols);
  auto r = EvalStratified(p, db);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto tc = TransitiveClosure(g);
  const Relation& s3 = IdbRelation(p, r->state, "S3");
  size_t expected_count = 0;
  for (size_t x = 0; x < 3; ++x) {
    for (size_t y = 0; y < 3; ++y) {
      for (size_t xs = 0; xs < 3; ++xs) {
        for (size_t ys = 0; ys < 3; ++ys) {
          const bool expected = tc[x][y] && !tc[xs][ys];
          if (expected) ++expected_count;
          const Tuple t{symbols->InternInt(x), symbols->InternInt(y),
                        symbols->InternInt(xs), symbols->InternInt(ys)};
          EXPECT_EQ(s3.Contains(t), expected);
        }
      }
    }
  }
  EXPECT_EQ(s3.size(), expected_count);
}

TEST(StratifiedTest, SemanticsDifferOnDistanceProgram) {
  // Concrete divergence witness on L₃: (0,1,0,2) is in the inflationary
  // S3 (d(0,1)=1 ≤ d(0,2)=2) but not in the stratified S3 (TC(0,2) holds).
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram(kDistance, symbols);
  Database db = DbFromGraph(PathGraph(3), symbols);
  InflationaryResult inf = MustEval(p, db);
  auto strat = EvalStratified(p, db);
  ASSERT_TRUE(strat.ok());
  const Tuple witness{symbols->Intern("0"), symbols->Intern("1"),
                      symbols->Intern("0"), symbols->Intern("2")};
  EXPECT_TRUE(IdbRelation(p, inf.state, "S3").Contains(witness));
  EXPECT_FALSE(IdbRelation(p, strat->state, "S3").Contains(witness));
}

TEST(StratifiedTest, RejectsNonStratifiablePrograms) {
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram(kPi1, symbols);
  Database db = DbFromGraph(PathGraph(3), symbols);
  auto r = EvalStratified(p, db);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(StratifiedTest, AgreesWithInflationaryOnPositivePrograms) {
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram(kTc, symbols);
  Rng rng(404);
  Database db = DbFromGraph(RandomDigraph(7, 0.3, &rng), symbols);
  auto strat = EvalStratified(p, db);
  ASSERT_TRUE(strat.ok());
  InflationaryResult inf = MustEval(p, db);
  EXPECT_EQ(strat->state, inf.state);
}

TEST(StratifiedTest, ThreeStrataChain) {
  // Win := reachable; Lose := not reachable; Gap := Lose pairs with an edge.
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram(
      "Reach(X,Y) :- E(X,Y).\n"
      "Reach(X,Y) :- E(X,Z), Reach(Z,Y).\n"
      "NoReach(X,Y) :- V(X), V(Y), !Reach(X,Y).\n"
      "Gap(X,Y) :- NoReach(X,Y), E(Y,X).\n",
      symbols);
  Database db = DbFromGraph(PathGraph(3), symbols);
  for (int v = 0; v < 3; ++v) {
    INFLOG_CHECK(
        db.AddFact("V", Tuple{symbols->Intern(std::to_string(v))}).ok());
  }
  auto r = EvalStratified(p, db);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // NoReach = all 9 pairs minus {(0,1),(0,2),(1,2)} = 6.
  EXPECT_EQ(IdbRelation(p, r->state, "NoReach").size(), 6u);
  // Gap: (y→x edge with x not reaching y): (1,0) via E(0,1), (2,1) via
  // E(1,2).
  EXPECT_EQ(IdbRelation(p, r->state, "Gap").size(), 2u);
}

TEST(StratifiedTest, StageSemanticsInvarianceAcrossDrivers) {
  // Stratified results are independent of the semi-naive option.
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram(kDistance, symbols);
  Rng rng(7);
  Database db = DbFromGraph(RandomDigraph(5, 0.4, &rng), symbols);
  StratifiedOptions fast, slow;
  slow.use_seminaive = false;
  auto a = EvalStratified(p, db, fast);
  auto b = EvalStratified(p, db, slow);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->state, b->state);
}

}  // namespace
}  // namespace inflog
