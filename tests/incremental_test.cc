// Tests for incremental view maintenance (src/eval/incremental.h):
// counting on non-recursive units (duplicate derivations, multi-rule
// support, negation across strata), DRed on recursive units (alternate-
// path rederivation, cycle-disconnecting deletes), the oracle fallbacks
// (grounded semantics, non-positive inflationary programs, universe
// growth under active-domain negation), batch netting, error paths, and
// the ParseUpdateLine format. Every maintained state is cross-checked
// against a from-scratch evaluation of the mutated database — the same
// oracle EvalOptions::verify_incremental applies per update.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "src/core/engine.h"
#include "src/eval/incremental.h"
#include "tests/test_util.h"

namespace inflog {
namespace {

using testing::TuplesOf;

class IncrementalTest : public ::testing::Test {
 protected:
  /// Loads program + database text into a fresh engine.
  void Load(std::string_view program, std::string_view facts) {
    engine_ = std::make_unique<Engine>();
    ASSERT_TRUE(engine_->LoadProgramText(program).ok());
    ASSERT_TRUE(engine_->LoadDatabaseText(facts).ok());
  }

  Value V(const std::string& name) { return engine_->symbols()->Intern(name); }

  /// One (relation, tuple) update entry with named constants.
  std::pair<std::string, Tuple> Fact(std::string rel,
                                     const std::vector<std::string>& args) {
    Tuple t;
    for (const std::string& a : args) t.push_back(V(a));
    return {std::move(rel), std::move(t)};
  }

  /// The maintained state must equal a from-scratch evaluation of the
  /// (already mutated) database under the session's semantics.
  void ExpectMatchesScratch(SemanticsKind kind) {
    auto state = engine_->IncrementalState();
    ASSERT_TRUE(state.ok());
    auto fresh = engine_->Evaluate(kind);
    ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
    ASSERT_EQ((*state)->relations.size(), fresh->state().relations.size());
    for (size_t i = 0; i < fresh->state().relations.size(); ++i) {
      EXPECT_EQ(TuplesOf(*engine_->symbols(), (*state)->relations[i]),
                TuplesOf(*engine_->symbols(), fresh->state().relations[i]))
          << "relation " << i;
    }
  }

  /// The tuples of IDB predicate `name` in the maintained state.
  std::vector<std::vector<std::string>> Maintained(std::string_view name) {
    auto state = engine_->IncrementalState();
    INFLOG_CHECK(state.ok());
    auto program = engine_->program();
    INFLOG_CHECK(program.ok());
    return TuplesOf(*engine_->symbols(),
                    testing::IdbRelation(**program, **state, name));
  }

  std::unique_ptr<Engine> engine_;
};

// --- Counting (non-recursive units). ---

TEST_F(IncrementalTest, CountingInsertAndDelete) {
  Load("P(X,Z) :- A(X,Y), B(Y,Z).", "A(1,2). B(2,3).");
  ASSERT_TRUE(engine_->BeginIncremental(SemanticsKind::kStratified).ok());
  EXPECT_EQ(Maintained("P"),
            (std::vector<std::vector<std::string>>{{"1", "3"}}));

  auto r = engine_->ApplyUpdate({Fact("A", {"5", "2"})}, {});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->used_oracle);
  EXPECT_EQ(r->stats.incremental_counting_units, 1u);
  EXPECT_EQ(r->stats.incremental_idb_inserted, 1u);
  ExpectMatchesScratch(SemanticsKind::kStratified);

  r = engine_->ApplyUpdate({}, {Fact("B", {"2", "3"})});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.incremental_idb_deleted, 2u);
  EXPECT_TRUE(Maintained("P").empty());
  ExpectMatchesScratch(SemanticsKind::kStratified);
}

TEST_F(IncrementalTest, CountingKeepsTuplesWithSurvivingDerivations) {
  // P(1) has two derivations (through Y=2 and Y=3): deleting one support
  // must not delete the tuple — exactly what the counts track.
  Load("P(X) :- A(X,Y).", "A(1,2). A(1,3).");
  ASSERT_TRUE(engine_->BeginIncremental(SemanticsKind::kStratified).ok());

  auto r = engine_->ApplyUpdate({}, {Fact("A", {"1", "2"})});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Maintained("P"), (std::vector<std::vector<std::string>>{{"1"}}));
  EXPECT_EQ(r->stats.incremental_idb_deleted, 0u);

  r = engine_->ApplyUpdate({}, {Fact("A", {"1", "3"})});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(Maintained("P").empty());
  ExpectMatchesScratch(SemanticsKind::kStratified);
}

TEST_F(IncrementalTest, CountingSumsSupportAcrossRules) {
  // The same tuple derived by two different rules: each rule contributes
  // its own derivations to the count.
  Load("P(X) :- A(X,Y).\nP(X) :- B(X,Y).", "A(1,7). B(1,8).");
  ASSERT_TRUE(engine_->BeginIncremental(SemanticsKind::kStratified).ok());

  auto r = engine_->ApplyUpdate({}, {Fact("A", {"1", "7"})});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Maintained("P"), (std::vector<std::vector<std::string>>{{"1"}}));

  r = engine_->ApplyUpdate({}, {Fact("B", {"1", "8"})});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(Maintained("P").empty());
  ExpectMatchesScratch(SemanticsKind::kStratified);
}

TEST_F(IncrementalTest, CountingAcrossNegation) {
  // Q lives in a lower stratum than P; inserting A(2,2) derives Q(2),
  // which must *retract* P(2) through the negation — and deleting it must
  // bring P(2) back.
  Load("Q(X) :- A(X,X).\nP(X) :- S(X), !Q(X).", "S(1). S(2). A(1,3).");
  ASSERT_TRUE(engine_->BeginIncremental(SemanticsKind::kStratified).ok());
  EXPECT_EQ(Maintained("P"),
            (std::vector<std::vector<std::string>>{{"1"}, {"2"}}));

  auto r = engine_->ApplyUpdate({Fact("A", {"2", "2"})}, {});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->used_oracle);
  EXPECT_EQ(Maintained("P"), (std::vector<std::vector<std::string>>{{"1"}}));
  ExpectMatchesScratch(SemanticsKind::kStratified);

  r = engine_->ApplyUpdate({}, {Fact("A", {"2", "2"})});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Maintained("P"),
            (std::vector<std::vector<std::string>>{{"1"}, {"2"}}));
  ExpectMatchesScratch(SemanticsKind::kStratified);
}

// --- DRed (recursive units). ---

constexpr char kTc[] = "T(X,Y) :- E(X,Y).\nT(X,Z) :- T(X,Y), E(Y,Z).";

TEST_F(IncrementalTest, DRedRederivesThroughAlternatePath) {
  // Two paths 1→4; deleting an edge of one must keep every closure tuple
  // the other still supports (the over-deletion is rederived back).
  Load(kTc, "E(1,2). E(2,4). E(1,3). E(3,4). E(4,5).");
  ASSERT_TRUE(engine_->BeginIncremental(SemanticsKind::kStratified).ok());

  auto r = engine_->ApplyUpdate({}, {Fact("E", {"2", "4"})});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->used_oracle);
  EXPECT_EQ(r->stats.incremental_dred_units, 1u);
  EXPECT_GT(r->stats.incremental_rederived, 0u);
  // (1,4) and (1,5) survive via 1→3→4; only (2,4) and (2,5) die.
  EXPECT_EQ(r->stats.incremental_idb_deleted, 2u);
  ExpectMatchesScratch(SemanticsKind::kStratified);
}

TEST_F(IncrementalTest, DRedCycleDisconnectingDelete) {
  // A 4-cycle's closure is all 16 pairs; removing one edge leaves the
  // chain closure (6 pairs). The deleted edge supported *every* tuple
  // transitively through the cycle, so DRed must prune deep and rederive
  // precisely the chain part.
  Load(kTc, "E(1,2). E(2,3). E(3,4). E(4,1).");
  ASSERT_TRUE(engine_->BeginIncremental(SemanticsKind::kStratified).ok());
  EXPECT_EQ(Maintained("T").size(), 16u);

  auto r = engine_->ApplyUpdate({}, {Fact("E", {"4", "1"})});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->used_oracle);
  EXPECT_EQ(Maintained("T").size(), 6u);
  ExpectMatchesScratch(SemanticsKind::kStratified);

  // Reconnect: insertion seeds must regrow the full cyclic closure.
  r = engine_->ApplyUpdate({Fact("E", {"4", "1"})}, {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Maintained("T").size(), 16u);
  ExpectMatchesScratch(SemanticsKind::kStratified);
}

TEST_F(IncrementalTest, MixedBatchOnRecursiveAndNonRecursiveUnits) {
  // One update batch touching a counting unit (D) and a DRed unit (T)
  // at once, with both an insert and a delete.
  Load("T(X,Y) :- E(X,Y).\nT(X,Z) :- T(X,Y), E(Y,Z).\nD(X) :- T(X,X).",
       "E(1,2). E(2,1). E(2,3).");
  ASSERT_TRUE(engine_->BeginIncremental(SemanticsKind::kStratified).ok());
  EXPECT_EQ(Maintained("D"),
            (std::vector<std::vector<std::string>>{{"1"}, {"2"}}));

  auto r = engine_->ApplyUpdate({Fact("E", {"3", "1"})},
                                {Fact("E", {"2", "1"})});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->used_oracle);
  EXPECT_EQ(r->stats.incremental_dred_units, 1u);
  EXPECT_EQ(r->stats.incremental_counting_units, 1u);
  // The cycle now runs 1→2→3→1: everyone still reaches themselves.
  EXPECT_EQ(Maintained("D"),
            (std::vector<std::vector<std::string>>{{"1"}, {"2"}, {"3"}}));
  ExpectMatchesScratch(SemanticsKind::kStratified);
}

// --- Netting and no-ops. ---

TEST_F(IncrementalTest, EmptyDeltaIsANoOp) {
  Load(kTc, "E(1,2). E(2,3).");
  ASSERT_TRUE(engine_->BeginIncremental(SemanticsKind::kStratified).ok());

  // Inserting a present fact and deleting an absent one both net to
  // nothing; the update must not touch any unit.
  auto r = engine_->ApplyUpdate({Fact("E", {"1", "2"})},
                                {Fact("E", {"7", "8"})});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->used_oracle);
  EXPECT_EQ(r->stats.incremental_edb_inserted, 0u);
  EXPECT_EQ(r->stats.incremental_edb_deleted, 0u);
  EXPECT_EQ(r->stats.incremental_counting_units, 0u);
  EXPECT_EQ(r->stats.incremental_dred_units, 0u);
  ExpectMatchesScratch(SemanticsKind::kStratified);

  // A fully empty batch is legal too.
  r = engine_->ApplyUpdate({}, {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.incremental_edb_inserted, 0u);
}

TEST_F(IncrementalTest, InsertWinsOverDeleteOfTheSameTuple) {
  Load(kTc, "E(1,2).");
  ASSERT_TRUE(engine_->BeginIncremental(SemanticsKind::kStratified).ok());

  // The same absent tuple both inserted and deleted in one batch:
  // inserts win, so E(2,3) lands and T grows.
  auto r = engine_->ApplyUpdate({Fact("E", {"2", "3"})},
                                {Fact("E", {"2", "3"})});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.incremental_edb_inserted, 1u);
  EXPECT_EQ(r->stats.incremental_edb_deleted, 0u);
  EXPECT_EQ(Maintained("T").size(), 3u);
  ExpectMatchesScratch(SemanticsKind::kStratified);
}

// --- Fallbacks. ---

TEST_F(IncrementalTest, InflationaryPositiveMaintainsIncrementally) {
  Load(kTc, "E(1,2). E(2,3).");
  ASSERT_TRUE(engine_->BeginIncremental(SemanticsKind::kInflationary).ok());

  auto r = engine_->ApplyUpdate({Fact("E", {"3", "4"})}, {});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->used_oracle);
  ExpectMatchesScratch(SemanticsKind::kInflationary);

  r = engine_->ApplyUpdate({}, {Fact("E", {"2", "3"})});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->used_oracle);
  ExpectMatchesScratch(SemanticsKind::kInflationary);
}

TEST_F(IncrementalTest, InflationaryWithNegationFallsBackToOracle) {
  // Θ^∞ of a non-positive program is not maintainable by counting/DRed
  // (the inflationary union is order-sensitive); every update must run
  // the recompute oracle and still land on the right state.
  Load("T(X) :- E(Y,X), !T(Y).", "E(1,2). E(2,3).");
  ASSERT_TRUE(engine_->BeginIncremental(SemanticsKind::kInflationary).ok());

  auto r = engine_->ApplyUpdate({Fact("E", {"3", "4"})}, {});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->used_oracle);
  EXPECT_EQ(r->stats.incremental_oracle_runs, 1u);
  ExpectMatchesScratch(SemanticsKind::kInflationary);
}

TEST_F(IncrementalTest, GroundedSemanticsFallBackToOracle) {
  Load("W(X) :- E(X,Y), !W(Y).", "E(1,2). E(2,3).");
  for (SemanticsKind kind :
       {SemanticsKind::kWellFounded, SemanticsKind::kStable}) {
    ASSERT_TRUE(engine_->BeginIncremental(kind).ok());
    auto r = engine_->ApplyUpdate({Fact("E", {"3", "4"})}, {});
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->used_oracle);
    ExpectMatchesScratch(kind);
    // Undo so the second semantics starts from the same database.
    ASSERT_TRUE(engine_->ApplyUpdate({}, {Fact("E", {"3", "4"})}).ok());
  }
}

TEST_F(IncrementalTest, UniverseGrowthUnderActiveDomainNegationUsesOracle) {
  // Y is bound only under negation: the rule reads Y over the active
  // domain, so an update that grows the universe can change matches far
  // from the delta — the maintainer must recompute. An update over known
  // constants stays incremental.
  Load("P(X,Y) :- S(X), !R(X,Y).", "S(1). R(1,1). @universe 1 2.");
  ASSERT_TRUE(engine_->BeginIncremental(SemanticsKind::kStratified).ok());

  auto r = engine_->ApplyUpdate({Fact("R", {"1", "2"})}, {});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->used_oracle);
  ExpectMatchesScratch(SemanticsKind::kStratified);

  r = engine_->ApplyUpdate({Fact("S", {"9"})}, {});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->used_oracle);
  ExpectMatchesScratch(SemanticsKind::kStratified);
}

TEST_F(IncrementalTest, VerifyIncrementalCrossChecksEveryUpdate) {
  Load(kTc, "E(1,2). E(2,3). E(3,1).");
  EvalOptions options;
  options.verify_incremental = true;
  ASSERT_TRUE(
      engine_->BeginIncremental(SemanticsKind::kStratified, options).ok());
  ASSERT_TRUE(engine_->ApplyUpdate({Fact("E", {"3", "4"})}, {}).ok());
  ASSERT_TRUE(engine_->ApplyUpdate({}, {Fact("E", {"3", "1"})}).ok());
  ASSERT_TRUE(engine_->ApplyUpdate({Fact("E", {"3", "1"})},
                                   {Fact("E", {"1", "2"})})
                  .ok());
  ExpectMatchesScratch(SemanticsKind::kStratified);
}

// --- Session lifecycle and error paths. ---

TEST_F(IncrementalTest, ApplyUpdateRequiresASession) {
  Load(kTc, "E(1,2).");
  auto r = engine_->ApplyUpdate({Fact("E", {"2", "3"})}, {});
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(engine_->HasIncrementalSession());
}

TEST_F(IncrementalTest, LoadingDropsTheSession) {
  Load(kTc, "E(1,2).");
  ASSERT_TRUE(engine_->BeginIncremental(SemanticsKind::kStratified).ok());
  EXPECT_TRUE(engine_->HasIncrementalSession());
  ASSERT_TRUE(engine_->LoadDatabaseText("E(9,9).").ok());
  EXPECT_FALSE(engine_->HasIncrementalSession());
}

TEST_F(IncrementalTest, RejectsUnknownAndDerivedRelations) {
  Load(kTc, "E(1,2).");
  ASSERT_TRUE(engine_->BeginIncremental(SemanticsKind::kStratified).ok());

  EXPECT_FALSE(engine_->ApplyUpdate({Fact("Nope", {"1"})}, {}).ok());
  EXPECT_FALSE(engine_->ApplyUpdate({Fact("T", {"1", "2"})}, {}).ok());
  EXPECT_FALSE(engine_->ApplyUpdate({Fact("E", {"1"})}, {}).ok());  // arity

  // A failed batch must not have half-applied: the state is untouched.
  ExpectMatchesScratch(SemanticsKind::kStratified);
}

// --- ParseUpdateLine. ---

TEST(ParseUpdateLineTest, ParsesInsertsDeletesAndComments) {
  auto symbols = std::make_shared<SymbolTable>();
  auto batch = ParseUpdateLine("+E(a,b) -E(c) +F(x, y)", symbols.get());
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->inserts.size(), 2u);
  ASSERT_EQ(batch->deletes.size(), 1u);
  EXPECT_EQ(batch->inserts[0].first, "E");
  EXPECT_EQ(batch->inserts[0].second,
            (Tuple{symbols->Intern("a"), symbols->Intern("b")}));
  EXPECT_EQ(batch->deletes[0].first, "E");
  EXPECT_EQ(batch->inserts[1].first, "F");

  auto empty = ParseUpdateLine("   # just a comment", symbols.get());
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  auto trailing = ParseUpdateLine("+E(a,b)  # add an edge", symbols.get());
  ASSERT_TRUE(trailing.ok());
  EXPECT_EQ(trailing->inserts.size(), 1u);
}

TEST(ParseUpdateLineTest, RejectsMalformedTokens) {
  auto symbols = std::make_shared<SymbolTable>();
  EXPECT_FALSE(ParseUpdateLine("E(a,b)", symbols.get()).ok());   // no sign
  EXPECT_FALSE(ParseUpdateLine("+E(a,b", symbols.get()).ok());   // no ')'
  EXPECT_FALSE(ParseUpdateLine("+E a,b)", symbols.get()).ok());  // no '('
  EXPECT_FALSE(ParseUpdateLine("+(a)", symbols.get()).ok());     // no name
  EXPECT_FALSE(ParseUpdateLine("+E(a,)", symbols.get()).ok());   // bad arg
}

}  // namespace
}  // namespace inflog
