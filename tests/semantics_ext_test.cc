// Tests for the well-founded and stable-model semantics and their
// relationships to the paper's fixpoints: stable ⊆ supported (= fixpoints
// of Θ), WFS total = stratified on stratified programs, and the classic
// behaviors on the §2 cycle families.

#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/eval/stable.h"
#include "src/eval/stratified.h"
#include "src/eval/wellfounded.h"
#include "src/fixpoint/analysis.h"
#include "tests/test_util.h"

namespace inflog {
namespace {

using testing::CanonStates;
using testing::DbFromGraph;
using testing::IdbRelation;
using testing::MustProgram;
using testing::UnarySet;

constexpr char kPi1[] = "T(X) :- E(Y,X), !T(Y).";

// --- Well-founded semantics. ---

TEST(WellFoundedTest, TotalOnPathAndEqualsUniqueFixpoint) {
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram(kPi1, symbols);
  Database db = DbFromGraph(PathGraph(6), symbols);
  auto wf = EvalWellFounded(p, db);
  ASSERT_TRUE(wf.ok()) << wf.status().ToString();
  EXPECT_TRUE(wf->total);
  EXPECT_EQ(UnarySet(*symbols, IdbRelation(p, wf->true_state, "T")),
            (std::set<std::string>{"1", "3", "5"}));
}

TEST(WellFoundedTest, UndefinedOnCycles) {
  for (size_t n : {3u, 4u, 5u, 6u}) {
    auto symbols = std::make_shared<SymbolTable>();
    Program p = MustProgram(kPi1, symbols);
    Database db = DbFromGraph(CycleGraph(n), symbols);
    auto wf = EvalWellFounded(p, db);
    ASSERT_TRUE(wf.ok());
    // On any cycle, every T(v) is undefined: nothing is forced either
    // way, whether the fixpoint count is 0 (odd) or 2 (even).
    EXPECT_FALSE(wf->total) << "n=" << n;
    EXPECT_EQ(IdbRelation(p, wf->true_state, "T").size(), 0u);
    EXPECT_EQ(IdbRelation(p, wf->undefined_state, "T").size(), n);
  }
}

TEST(WellFoundedTest, ToggleIsUndefinedEverywhere) {
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram("T(Z) :- !T(W).", symbols);
  Database db = DbFromGraph(PathGraph(3), symbols);
  auto wf = EvalWellFounded(p, db);
  ASSERT_TRUE(wf.ok());
  EXPECT_FALSE(wf->total);
  EXPECT_EQ(IdbRelation(p, wf->undefined_state, "T").size(), 3u);
}

TEST(WellFoundedTest, MixedPathIntoCycle) {
  // A path feeding into a cycle: the path prefix is determined, the
  // cycle stays undefined.
  Digraph g(5);  // 0→1→2→3→4→2 (cycle 2,3,4)
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  g.AddEdge(4, 2);
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram(kPi1, symbols);
  Database db = DbFromGraph(g, symbols);
  auto wf = EvalWellFounded(p, db);
  ASSERT_TRUE(wf.ok());
  // T(1) is true (0 has no predecessor, so T(0) false, so T(1) true).
  EXPECT_EQ(UnarySet(*symbols, IdbRelation(p, wf->true_state, "T")),
            (std::set<std::string>{"1"}));
  // 2,3,4 sit on an odd cycle with an extra determined feed; vertex 2 has
  // predecessors 1 (T true) and 4 (undefined) — T(2) stays undefined.
  EXPECT_EQ(UnarySet(*symbols, IdbRelation(p, wf->undefined_state, "T")),
            (std::set<std::string>{"2", "3", "4"}));
}

TEST(WellFoundedTest, TotalAndEqualToStratifiedOnStratifiedPrograms) {
  constexpr char kStratified[] =
      "Reach(X,Y) :- E(X,Y).\n"
      "Reach(X,Y) :- E(X,Z), Reach(Z,Y).\n"
      "Blocked(X,Y) :- E(Y,X), !Reach(X,Y).\n";
  for (int seed : {1, 2, 3, 4}) {
    Rng rng(seed * 77);
    const Digraph g = RandomDigraph(5, 0.35, &rng);
    auto symbols = std::make_shared<SymbolTable>();
    Program p = MustProgram(kStratified, symbols);
    Database db = DbFromGraph(g, symbols);
    auto wf = EvalWellFounded(p, db);
    auto strat = EvalStratified(p, db);
    ASSERT_TRUE(wf.ok() && strat.ok());
    EXPECT_TRUE(wf->total) << "seed " << seed;
    EXPECT_EQ(wf->true_state, strat->state) << "seed " << seed;
  }
}

TEST(WellFoundedTest, PositiveProgramIsTotalLeastModel) {
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram(
      "S(X,Y) :- E(X,Y).\nS(X,Y) :- E(X,Z), S(Z,Y).", symbols);
  Database db = DbFromGraph(CycleGraph(4), symbols);
  auto wf = EvalWellFounded(p, db);
  ASSERT_TRUE(wf.ok());
  EXPECT_TRUE(wf->total);
  EXPECT_EQ(IdbRelation(p, wf->true_state, "S").size(), 16u);
}

// --- Stable models. ---

TEST(StableTest, EvenCycleHasTwoStableModels) {
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram(kPi1, symbols);
  Database db = DbFromGraph(CycleGraph(4), symbols);
  auto stable = EnumerateStableModels(p, db);
  ASSERT_TRUE(stable.ok()) << stable.status().ToString();
  EXPECT_EQ(stable->models.size(), 2u);
  // Here the supported and stable models coincide.
  auto analyzer = FixpointAnalyzer::Create(&p, &db);
  ASSERT_TRUE(analyzer.ok());
  auto fixpoints = analyzer->EnumerateFixpoints();
  ASSERT_TRUE(fixpoints.ok());
  EXPECT_EQ(CanonStates(p, stable->models), CanonStates(p, *fixpoints));
}

TEST(StableTest, OddCycleHasNone) {
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram(kPi1, symbols);
  Database db = DbFromGraph(CycleGraph(5), symbols);
  auto stable = EnumerateStableModels(p, db);
  ASSERT_TRUE(stable.ok());
  EXPECT_TRUE(stable->models.empty());
}

TEST(StableTest, SelfSupportIsSupportedButNotStable) {
  // S(x) ← S(x): 2^|A| supported models (fixpoints), exactly one stable
  // model (∅) — the canonical separation.
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram("S(X) :- S(X).", symbols);
  Database db = DbFromGraph(PathGraph(3), symbols);
  auto stable = EnumerateStableModels(p, db);
  ASSERT_TRUE(stable.ok());
  ASSERT_EQ(stable->models.size(), 1u);
  EXPECT_EQ(stable->models[0].TotalTuples(), 0u);
  EXPECT_EQ(stable->supported_examined, 8u);
}

TEST(StableTest, ToggleHasNoStableModel) {
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram("T(Z) :- !T(W).", symbols);
  Database db = DbFromGraph(PathGraph(3), symbols);
  auto stable = EnumerateStableModels(p, db);
  ASSERT_TRUE(stable.ok());
  EXPECT_TRUE(stable->models.empty());
  EXPECT_EQ(stable->supported_examined, 0u);  // not even supported models
}

TEST(StableTest, UniqueStableOnStratifiedEqualsStratified) {
  constexpr char kStratified[] =
      "Reach(X,Y) :- E(X,Y).\n"
      "Reach(X,Y) :- E(X,Z), Reach(Z,Y).\n"
      "Blocked(X,Y) :- E(Y,X), !Reach(X,Y).\n";
  Rng rng(99);
  const Digraph g = RandomDigraph(4, 0.4, &rng);
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram(kStratified, symbols);
  Database db = DbFromGraph(g, symbols);
  auto stable = EnumerateStableModels(p, db);
  auto strat = EvalStratified(p, db);
  ASSERT_TRUE(stable.ok() && strat.ok());
  ASSERT_EQ(stable->models.size(), 1u);
  EXPECT_EQ(stable->models[0], strat->state);
}

class StableVsFixpoints : public ::testing::TestWithParam<int> {};

TEST_P(StableVsFixpoints, StableModelsAreFixpointsAndRespectWfs) {
  const int seed = GetParam();
  Rng rng(seed * 41 + 9);
  const Digraph g = RandomDigraph(3 + rng.Uniform(3), 0.35, &rng);
  constexpr char kMixed[] =
      "T(X) :- E(Y,X), !T(Y).\n"
      "S(X) :- E(X,Y), !T(X).\n";
  auto symbols = std::make_shared<SymbolTable>();
  Program p = MustProgram(kMixed, symbols);
  Database db = DbFromGraph(g, symbols);
  auto stable = EnumerateStableModels(p, db);
  ASSERT_TRUE(stable.ok());
  auto analyzer = FixpointAnalyzer::Create(&p, &db);
  ASSERT_TRUE(analyzer.ok());
  auto wf = EvalWellFounded(p, db);
  ASSERT_TRUE(wf.ok());
  for (const IdbState& model : stable->models) {
    // Stable ⊆ supported (= fixpoints of Θ).
    auto is_fixpoint = analyzer->VerifyFixpoint(model);
    ASSERT_TRUE(is_fixpoint.ok());
    EXPECT_TRUE(*is_fixpoint);
    // WFS-true atoms hold in every stable model; WFS-false atoms in none.
    EXPECT_TRUE(wf->true_state.IsSubsetOf(model));
    for (size_t i = 0; i < model.relations.size(); ++i) {
      for (size_t r = 0; r < model.relations[i].size(); ++r) {
        TupleView t = model.relations[i].Row(r);
        const bool wf_true = wf->true_state.relations[i].Contains(t);
        const bool wf_undef = wf->undefined_state.relations[i].Contains(t);
        EXPECT_TRUE(wf_true || wf_undef)
            << "stable model contains a WFS-false atom";
      }
    }
  }
  // If the WFS is total, its true set is the unique stable model.
  if (wf->total) {
    ASSERT_EQ(stable->models.size(), 1u);
    EXPECT_EQ(stable->models[0], wf->true_state);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StableVsFixpoints, ::testing::Range(0, 10));

}  // namespace
}  // namespace inflog
