// Tests for the paper's reductions:
//   * Example 1 / Theorems 1-2: π_SAT fixpoints ↔ satisfying assignments,
//     with the CDCL solver (run directly on the CNF) as independent oracle;
//   * Lemma 1: π_COL fixpoints ↔ 3-colorability, vs. backtracking oracle;
//   * Theorem 4: circuits, succinct graphs, and the π_SC compiler.

#include <gtest/gtest.h>

#include "src/ast/analysis.h"
#include "src/base/rng.h"
#include "src/base/strings.h"
#include "src/fixpoint/analysis.h"
#include "src/reductions/circuit.h"
#include "src/reductions/sat_db.h"
#include "src/reductions/succinct.h"
#include "src/reductions/three_coloring.h"
#include "src/sat/solver.h"
#include "tests/test_util.h"

namespace inflog {
namespace {

using testing::DbFromGraph;

sat::Cnf Random3Sat(int num_vars, int num_clauses, Rng* rng) {
  sat::Cnf cnf;
  for (int i = 0; i < num_vars; ++i) cnf.NewVar();
  for (int c = 0; c < num_clauses; ++c) {
    sat::Clause clause;
    while (clause.size() < 3) {
      const sat::Var v = static_cast<sat::Var>(rng->Uniform(num_vars));
      bool dup = false;
      for (const sat::Lit& l : clause) dup |= l.var() == v;
      if (!dup) clause.push_back(sat::Lit(v, rng->Bernoulli(0.5)));
    }
    cnf.AddClause(clause);
  }
  return cnf;
}

uint64_t BruteForceModelCount(const sat::Cnf& cnf) {
  INFLOG_CHECK(cnf.num_vars <= 16);
  uint64_t count = 0;
  std::vector<bool> assignment(cnf.num_vars);
  for (uint32_t mask = 0; mask < (1u << cnf.num_vars); ++mask) {
    for (int v = 0; v < cnf.num_vars; ++v) assignment[v] = (mask >> v) & 1;
    if (cnf.IsSatisfiedBy(assignment)) ++count;
  }
  return count;
}

// --- Example 1: D(I) encoding. ---

TEST(SatDbTest, EncodingShape) {
  sat::Cnf cnf;
  const sat::Var x = cnf.NewVar(), y = cnf.NewVar();
  cnf.AddClause({sat::Pos(x), sat::Neg(y)});
  auto symbols = std::make_shared<SymbolTable>();
  Database db = SatToDatabase(cnf, symbols);
  EXPECT_EQ(db.universe().size(), 3u);  // v0, v1, c0
  EXPECT_EQ((*db.GetRelation("V"))->size(), 2u);
  EXPECT_EQ((*db.GetRelation("P"))->size(), 1u);
  EXPECT_EQ((*db.GetRelation("N"))->size(), 1u);
}

TEST(SatDbTest, RoundTripThroughDatabase) {
  Rng rng(42);
  const sat::Cnf cnf = Random3Sat(6, 10, &rng);
  auto symbols = std::make_shared<SymbolTable>();
  Database db = SatToDatabase(cnf, symbols);
  auto back = DatabaseToSat(db);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->num_vars, cnf.num_vars);
  ASSERT_EQ(back->clauses.size(), cnf.clauses.size());
  for (size_t c = 0; c < cnf.clauses.size(); ++c) {
    auto a = cnf.clauses[c];
    auto b = back->clauses[c];
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "clause " << c;
  }
}

TEST(SatDbTest, PiSatIsNotStratifiable) {
  // π_SAT needs a semantics beyond stratification — that is the point.
  auto symbols = std::make_shared<SymbolTable>();
  Program p = PiSatProgram(symbols);
  const ProgramAnalysis a = AnalyzeProgram(p);
  EXPECT_FALSE(a.stratifiable);
}

class PiSatCorrespondence : public ::testing::TestWithParam<int> {};

TEST_P(PiSatCorrespondence, FixpointExistenceMatchesSatisfiability) {
  const int seed = GetParam();
  Rng rng(seed * 997 + 3);
  const int n = 4 + static_cast<int>(rng.Uniform(4));
  const int m = static_cast<int>(n * (1.5 + (seed % 5)));
  const sat::Cnf cnf = Random3Sat(n, m, &rng);

  // Independent oracle: CDCL directly on the CNF.
  sat::Solver oracle;
  oracle.AddCnf(cnf);
  const bool satisfiable = oracle.Solve() == sat::SolveResult::kSat;

  auto symbols = std::make_shared<SymbolTable>();
  Program pi_sat = PiSatProgram(symbols);
  Database db = SatToDatabase(cnf, symbols);
  auto analyzer = FixpointAnalyzer::Create(&pi_sat, &db);
  ASSERT_TRUE(analyzer.ok()) << analyzer.status().ToString();
  auto has = analyzer->HasFixpoint();
  ASSERT_TRUE(has.ok());
  EXPECT_EQ(*has, satisfiable) << "n=" << n << " m=" << m;

  if (satisfiable) {
    // Every fixpoint decodes to a satisfying assignment.
    auto fp = analyzer->FindFixpoint();
    ASSERT_TRUE(fp.ok());
    ASSERT_TRUE(fp->has_value());
    auto assignment = DecodeAssignment(pi_sat, db, cnf, **fp);
    ASSERT_TRUE(assignment.ok());
    EXPECT_TRUE(cnf.IsSatisfiedBy(*assignment));
    // And the oracle's model encodes to a verified fixpoint.
    auto encoded = EncodeAssignment(pi_sat, db, cnf, oracle.Model());
    ASSERT_TRUE(encoded.ok());
    auto verified = analyzer->VerifyFixpoint(*encoded);
    ASSERT_TRUE(verified.ok());
    EXPECT_TRUE(*verified);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PiSatCorrespondence, ::testing::Range(0, 15));

TEST(PiSatTest, FixpointCountEqualsModelCount) {
  // The Theorem 1 / Theorem 2 bijection, counted exactly.
  for (int seed : {1, 2, 3, 4, 5}) {
    Rng rng(seed * 131);
    const sat::Cnf cnf = Random3Sat(5, 6 + seed, &rng);
    auto symbols = std::make_shared<SymbolTable>();
    Program pi_sat = PiSatProgram(symbols);
    Database db = SatToDatabase(cnf, symbols);
    auto analyzer = FixpointAnalyzer::Create(&pi_sat, &db);
    ASSERT_TRUE(analyzer.ok());
    auto count = analyzer->CountFixpoints();
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, BruteForceModelCount(cnf)) << "seed " << seed;
  }
}

TEST(PiSatTest, UniqueFixpointIffUniqueSat) {
  // Theorem 2: π_SAT-UNIQUE-FIXPOINT mirrors UNIQUE SAT.
  // (a) A forced chain has exactly one model.
  sat::Cnf unique;
  for (int i = 0; i < 5; ++i) unique.NewVar();
  unique.AddClause({sat::Pos(0)});
  for (int i = 0; i + 1 < 5; ++i) {
    unique.AddClause({sat::Neg(i), sat::Pos(i + 1)});
    unique.AddClause({sat::Pos(i), sat::Neg(i + 1)});
  }
  // (b) A free variable gives two models.
  sat::Cnf two = unique;
  two.NewVar();
  // (c) A contradiction gives none.
  sat::Cnf none = unique;
  none.AddClause({sat::Neg(4)});

  struct Case {
    const sat::Cnf* cnf;
    UniqueStatus expected;
  } cases[] = {{&unique, UniqueStatus::kUnique},
               {&two, UniqueStatus::kMultiple},
               {&none, UniqueStatus::kNoFixpoint}};
  for (const auto& c : cases) {
    auto symbols = std::make_shared<SymbolTable>();
    Program pi_sat = PiSatProgram(symbols);
    Database db = SatToDatabase(*c.cnf, symbols);
    auto analyzer = FixpointAnalyzer::Create(&pi_sat, &db);
    ASSERT_TRUE(analyzer.ok());
    auto unique_status = analyzer->UniqueFixpoint();
    ASSERT_TRUE(unique_status.ok());
    EXPECT_EQ(*unique_status, c.expected);
  }
}

TEST(PiSatTest, EmptyClauseMeansNoFixpoint) {
  sat::Cnf cnf;
  cnf.NewVar();
  cnf.AddClause({});  // unsatisfiable empty clause
  auto symbols = std::make_shared<SymbolTable>();
  Program pi_sat = PiSatProgram(symbols);
  Database db = SatToDatabase(cnf, symbols);
  auto analyzer = FixpointAnalyzer::Create(&pi_sat, &db);
  ASSERT_TRUE(analyzer.ok());
  auto has = analyzer->HasFixpoint();
  ASSERT_TRUE(has.ok());
  EXPECT_FALSE(*has);
}

TEST(PiSatTest, NoClausesMeansAllAssignmentsAreFixpoints) {
  sat::Cnf cnf;
  cnf.NewVar();
  cnf.NewVar();
  cnf.NewVar();
  auto symbols = std::make_shared<SymbolTable>();
  Program pi_sat = PiSatProgram(symbols);
  Database db = SatToDatabase(cnf, symbols);
  auto analyzer = FixpointAnalyzer::Create(&pi_sat, &db);
  ASSERT_TRUE(analyzer.ok());
  auto count = analyzer->CountFixpoints();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 8u);
}

// --- Lemma 1: π_COL. ---

class PiColCorrespondence : public ::testing::TestWithParam<int> {};

TEST_P(PiColCorrespondence, FixpointIffThreeColorable) {
  const int seed = GetParam();
  Digraph g(0);
  switch (seed) {
    case 0:
      g = CycleGraph(5);
      break;
    case 1:
      g = CompleteGraph(4);
      break;
    case 2:
      g = CompleteGraph(3);
      break;
    case 3: {  // odd wheel: not 3-colorable
      Digraph wheel(6);
      const Digraph rim = CycleGraph(5);
      for (const auto& [u, v] : rim.Edges()) wheel.AddEdge(u, v);
      for (int v = 0; v < 5; ++v) wheel.AddEdge(5, v);
      g = wheel;
      break;
    }
    default: {
      Rng rng(seed * 53);
      g = RandomDigraph(4 + rng.Uniform(3), 0.45, &rng);
      break;
    }
  }
  auto symbols = std::make_shared<SymbolTable>();
  Program pi_col = PiColProgram(symbols);
  Database db = DbFromGraph(g, symbols);
  auto analyzer = FixpointAnalyzer::Create(&pi_col, &db);
  ASSERT_TRUE(analyzer.ok()) << analyzer.status().ToString();
  auto fp = analyzer->FindFixpoint();
  ASSERT_TRUE(fp.ok()) << fp.status().ToString();
  const bool colorable = IsThreeColorable(g);
  EXPECT_EQ(fp->has_value(), colorable) << g.ToString();
  if (fp->has_value()) {
    auto colors = DecodeColoring(pi_col, db, g.num_vertices(), **fp);
    ASSERT_TRUE(colors.ok()) << colors.status().ToString();
    EXPECT_TRUE(IsProperColoring(g, *colors));
  }
}

INSTANTIATE_TEST_SUITE_P(Graphs, PiColCorrespondence,
                         ::testing::Range(0, 12));

TEST(PiColTest, SelfLoopHasNoFixpoint) {
  Digraph g(2);
  g.AddEdge(0, 0);
  auto symbols = std::make_shared<SymbolTable>();
  Program pi_col = PiColProgram(symbols);
  Database db = DbFromGraph(g, symbols);
  auto analyzer = FixpointAnalyzer::Create(&pi_col, &db);
  ASSERT_TRUE(analyzer.ok());
  auto has = analyzer->HasFixpoint();
  ASSERT_TRUE(has.ok());
  EXPECT_FALSE(*has);
}

// --- Circuits. ---

TEST(CircuitTest, GateSemantics) {
  Circuit c(2);
  const uint32_t x = c.AddInput(0);
  const uint32_t y = c.AddInput(1);
  const uint32_t and_xy = c.AddAnd(x, y);
  const uint32_t or_xy = c.AddOr(x, y);
  c.AddAnd(or_xy, c.AddNot(and_xy));  // XOR as output
  EXPECT_FALSE(c.Eval({false, false}));
  EXPECT_TRUE(c.Eval({true, false}));
  EXPECT_TRUE(c.Eval({false, true}));
  EXPECT_FALSE(c.Eval({true, true}));
  EXPECT_TRUE(c.Validate().ok());
}

TEST(CircuitTest, ValidateCatchesForwardReference) {
  Circuit c(1);
  c.AddInput(0);
  // Hand-craft a bad gate via the public API being impossible; check the
  // empty circuit instead.
  Circuit empty(1);
  EXPECT_FALSE(empty.Validate().ok());
}

TEST(SuccinctFamiliesTest, CompleteGraphAdjacency) {
  const SuccinctGraph sg = SuccinctCompleteGraph(3);
  for (uint64_t u = 0; u < 8; ++u) {
    for (uint64_t v = 0; v < 8; ++v) {
      EXPECT_EQ(sg.HasEdge(u, v), u != v) << u << "," << v;
    }
  }
}

TEST(SuccinctFamiliesTest, HypercubeAdjacency) {
  const SuccinctGraph sg = SuccinctHypercube(4);
  for (uint64_t u = 0; u < 16; ++u) {
    for (uint64_t v = 0; v < 16; ++v) {
      EXPECT_EQ(sg.HasEdge(u, v), __builtin_popcountll(u ^ v) == 1);
    }
  }
}

TEST(SuccinctFamiliesTest, CycleAdjacency) {
  const SuccinctGraph sg = SuccinctCycle(3);
  for (uint64_t u = 0; u < 8; ++u) {
    for (uint64_t v = 0; v < 8; ++v) {
      EXPECT_EQ(sg.HasEdge(u, v), v == ((u + 1) & 7)) << u << "→" << v;
    }
  }
}

TEST(SuccinctFamiliesTest, ExplicitRoundTrip) {
  Rng rng(17);
  const Digraph g = RandomDigraph(7, 0.3, &rng);
  const SuccinctGraph sg = SuccinctFromExplicit(g, 3);
  const Digraph expanded = sg.Expand();
  for (size_t u = 0; u < 7; ++u) {
    for (size_t v = 0; v < 7; ++v) {
      EXPECT_EQ(expanded.HasEdge(u, v), g.HasEdge(u, v));
    }
  }
  // Padding vertex 7 has no edges.
  for (size_t v = 0; v < 8; ++v) {
    EXPECT_FALSE(expanded.HasEdge(7, v));
    EXPECT_FALSE(expanded.HasEdge(v, 7));
  }
}

// --- Theorem 4: π_SC. ---

struct SuccinctCase {
  const char* name;
  SuccinctGraph graph;
  bool expect_colorable;
};

class PiScCorrespondence
    : public ::testing::TestWithParam<int> {};

TEST_P(PiScCorrespondence, FixpointIffSuccinctThreeColorable) {
  SuccinctCase cases[] = {
      {"K2", SuccinctCompleteGraph(1), true},
      {"K4", SuccinctCompleteGraph(2), false},
      {"Q2", SuccinctHypercube(2), true},
      {"C4", SuccinctCycle(2), true},
      {"C8", SuccinctCycle(3), true},
      {"K8", SuccinctCompleteGraph(3), false},
  };
  const SuccinctCase& c = cases[GetParam()];
  // Independent oracle: expand and backtrack.
  const Digraph expanded = c.graph.Expand();
  ASSERT_EQ(IsThreeColorable(expanded), c.expect_colorable) << c.name;

  auto symbols = std::make_shared<SymbolTable>();
  auto instance = BuildSuccinct3Col(c.graph, symbols);
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();
  AnalyzeOptions opts;
  opts.grounder.max_ground_rules = 20'000'000;
  auto analyzer = FixpointAnalyzer::Create(&instance->program,
                                           &instance->database, opts);
  ASSERT_TRUE(analyzer.ok()) << analyzer.status().ToString();
  auto fp = analyzer->FindFixpoint();
  ASSERT_TRUE(fp.ok()) << fp.status().ToString();
  EXPECT_EQ(fp->has_value(), c.expect_colorable) << c.name;

  if (fp->has_value()) {
    // Gate relations in the fixpoint hold exactly the tuples on which the
    // gate outputs 1 (the paper's "In any fixpoint of π_SC ..." claim).
    const Program& p = instance->program;
    const size_t n2 = 2 * c.graph.n;
    for (size_t gi = 0; gi < c.graph.circuit.num_gates(); ++gi) {
      auto pred = p.FindPredicate(StrCat("Gt", gi));
      ASSERT_TRUE(pred.ok());
      const Relation& rel =
          (*fp)->relations[p.predicate(*pred).idb_index];
      size_t expected_size = 0;
      for (uint64_t bits = 0; bits < (uint64_t{1} << n2); ++bits) {
        std::vector<bool> inputs(n2);
        for (size_t b = 0; b < n2; ++b) inputs[b] = (bits >> b) & 1;
        const bool value = c.graph.circuit.EvalAllGates(inputs)[gi];
        if (value) ++expected_size;
        Tuple t(n2);
        for (size_t b = 0; b < n2; ++b) {
          t[b] = instance->database.symbols().Find(inputs[b] ? "1" : "0");
        }
        EXPECT_EQ(rel.Contains(t), value)
            << c.name << " gate " << gi << " bits " << bits;
      }
      EXPECT_EQ(rel.size(), expected_size);
    }
    // And the coloring decodes to a proper 3-coloring of the expansion.
    auto colors = DecodeSuccinctColoring(*instance, c.graph, **fp);
    ASSERT_TRUE(colors.ok()) << colors.status().ToString();
    EXPECT_TRUE(IsProperColoring(expanded, *colors)) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, PiScCorrespondence, ::testing::Range(0, 6));

TEST(PiScTest, RejectsMismatchedInputCount) {
  SuccinctGraph sg;
  sg.n = 2;
  sg.circuit = Circuit(3);  // should be 4
  sg.circuit.AddInput(0);
  auto instance = BuildSuccinct3Col(sg, std::make_shared<SymbolTable>());
  EXPECT_FALSE(instance.ok());
}

}  // namespace
}  // namespace inflog
