// Focused tests for the rule planner and executor: operator ordering,
// index use, residual enumeration, constants, repeated variables, and
// statistics — the join machinery everything else sits on.

#include <gtest/gtest.h>

#include "src/eval/executor.h"
#include "src/eval/plan.h"
#include "src/eval/theta.h"
#include "tests/test_util.h"

namespace inflog {
namespace {

using testing::DbFromGraph;
using testing::MustProgram;

class ExecutorFixture : public ::testing::Test {
 protected:
  void Init(std::string_view program_text, const Digraph& g) {
    symbols_ = std::make_shared<SymbolTable>();
    program_ =
        std::make_unique<Program>(MustProgram(program_text, symbols_));
    db_ = std::make_unique<Database>(DbFromGraph(g, symbols_));
    auto ctx = EvalContext::Create(*program_, *db_);
    INFLOG_CHECK(ctx.ok()) << ctx.status().ToString();
    ctx_ = std::make_unique<EvalContext>(std::move(ctx).value());
  }

  /// Runs rule 0's full plan into a fresh relation.
  Relation RunRule0(EvalStats* stats) {
    const std::vector<bool> all_dynamic(program_->idb_predicates().size(),
                                        true);
    RulePlan plan = PlanRule(*program_, 0, all_dynamic, -1);
    const Rule& rule = program_->rules()[0];
    Relation out(program_->predicate(rule.head.predicate).arity);
    IdbState state = MakeEmptyIdbState(*program_);
    ExecutePlan(*ctx_, plan, state, nullptr, &out, stats);
    return out;
  }

  std::shared_ptr<SymbolTable> symbols_;
  std::unique_ptr<Program> program_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<EvalContext> ctx_;
};

TEST_F(ExecutorFixture, JoinUsesIndexForBoundColumns) {
  Init("P(X,Z) :- E(X,Y), E(Y,Z).", PathGraph(32));
  EvalStats stats;
  Relation out = RunRule0(&stats);
  EXPECT_EQ(out.size(), 30u);  // two-step pairs on a path
  // The second E atom should be matched via index lookups, not scans:
  // rows_matched stays near the output size, far below 31*31.
  EXPECT_GT(stats.index_lookups, 0u);
  EXPECT_LT(stats.rows_matched, 200u);
}

TEST_F(ExecutorFixture, RepeatedVariableInAtom) {
  Digraph g(3);
  g.AddEdge(0, 0);
  g.AddEdge(0, 1);
  g.AddEdge(2, 2);
  Init("L(X) :- E(X,X).", g);
  EvalStats stats;
  Relation out = RunRule0(&stats);
  EXPECT_EQ(out.size(), 2u);  // self-loops at 0 and 2
}

TEST_F(ExecutorFixture, RepeatedVariableAcrossAtoms) {
  Init("Sym(X,Y) :- E(X,Y), E(Y,X).", CycleGraph(2));
  EvalStats stats;
  Relation out = RunRule0(&stats);
  EXPECT_EQ(out.size(), 2u);  // (0,1) and (1,0)
}

TEST_F(ExecutorFixture, ConstantsInBodyFilter) {
  Init("From0(Y) :- E(0, Y).", PathGraph(4));
  EvalStats stats;
  Relation out = RunRule0(&stats);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(symbols_->Name(out.Row(0)[0]), "1");
}

TEST_F(ExecutorFixture, ConstantHeadEmitsFixedValue) {
  Init("Tag(X, marked) :- E(X,Y).", PathGraph(3));
  EvalStats stats;
  Relation out = RunRule0(&stats);
  EXPECT_EQ(out.size(), 2u);  // vertices 0,1 have successors
  for (size_t r = 0; r < out.size(); ++r) {
    EXPECT_EQ(symbols_->Name(out.Row(r)[1]), "marked");
  }
}

TEST_F(ExecutorFixture, ResidualEnumerationForUnsafeHead) {
  // Y is not range-restricted: ranges over the universe.
  Init("Pairs(X,Y) :- E(X,Z).", PathGraph(3));
  EvalStats stats;
  Relation out = RunRule0(&stats);
  EXPECT_EQ(out.size(), 2u * 3u);  // {0,1} × universe
  EXPECT_GT(stats.enumerations, 0u);
}

TEST_F(ExecutorFixture, EqualityBindsInsteadOfEnumerating) {
  Init("Q(X,Y) :- E(X,Z), Y = X.", PathGraph(8));
  EvalStats stats;
  Relation out = RunRule0(&stats);
  EXPECT_EQ(out.size(), 7u);
  // Y is bound by the equality, never enumerated.
  EXPECT_EQ(stats.enumerations, 0u);
}

TEST_F(ExecutorFixture, ConstantEqualityContradictionNeverFires) {
  Init("Q(X) :- E(X,Y), 1 = 2.", PathGraph(4));
  const std::vector<bool> all_dynamic(program_->idb_predicates().size(),
                                      true);
  RulePlan plan = PlanRule(*program_, 0, all_dynamic, -1);
  EXPECT_TRUE(plan.never_fires);
  EvalStats stats;
  Relation out = RunRule0(&stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.rows_matched, 0u);
}

TEST_F(ExecutorFixture, ConstantInequalityTautologyDropped) {
  Init("Q(X) :- E(X,Y), 1 != 2.", PathGraph(4));
  EvalStats stats;
  Relation out = RunRule0(&stats);
  EXPECT_EQ(out.size(), 3u);
}

TEST_F(ExecutorFixture, NegatedAtomAppliedAsFilter) {
  Init("NoBack(X,Y) :- E(X,Y), !E(Y,X).", CycleGraph(2));
  EvalStats stats;
  Relation out = RunRule0(&stats);
  EXPECT_TRUE(out.empty());  // C2 is symmetric
  Init("NoBack(X,Y) :- E(X,Y), !E(Y,X).", PathGraph(3));
  EvalStats stats2;
  Relation out2 = RunRule0(&stats2);
  EXPECT_EQ(out2.size(), 2u);  // paths are one-way
}

TEST_F(ExecutorFixture, DeltaScanRestrictsToRange) {
  Init("S(X,Y) :- E(X,Z), S(Z,Y).\nS(X,Y) :- E(X,Y).", PathGraph(5));
  const std::vector<bool> all_dynamic(program_->idb_predicates().size(),
                                      true);
  // Seed S with the edges, then mark only the last row as delta.
  IdbState state = MakeEmptyIdbState(*program_);
  Relation& s = state.relations[0];
  for (int i = 0; i + 1 < 5; ++i) {
    s.Insert(Tuple{symbols_->Intern(std::to_string(i)),
                   symbols_->Intern(std::to_string(i + 1))});
  }
  const auto candidates =
      DeltaCandidates(*program_, program_->rules()[0], all_dynamic);
  ASSERT_EQ(candidates.size(), 1u);
  RulePlan plan = PlanRule(*program_, 0, all_dynamic, candidates[0]);
  // Only (3,4) is "new" (one shard — per-shard ranges with one entry).
  DeltaRanges deltas{{{s.size() - 1, s.size()}}};
  Relation out(2);
  EvalStats stats;
  ExecutePlan(*ctx_, plan, state, &deltas, &out, &stats);
  // Only derivations through the delta tuple (3,4): E(2,3) ∧ S(3,4).
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(symbols_->Name(out.Row(0)[0]), "2");
  EXPECT_EQ(symbols_->Name(out.Row(0)[1]), "4");
}

TEST_F(ExecutorFixture, PlanToStringIsInformative) {
  Init("T(X) :- E(Y,X), !T(Y).", PathGraph(3));
  const std::vector<bool> all_dynamic(program_->idb_predicates().size(),
                                      true);
  RulePlan plan = PlanRule(*program_, 0, all_dynamic, -1);
  const std::string text = plan.ToString(*program_);
  EXPECT_NE(text.find("match E"), std::string::npos) << text;
  EXPECT_NE(text.find("filter-neg T"), std::string::npos) << text;
}

TEST_F(ExecutorFixture, StatsCountDerivationsAndDuplicates) {
  // Two rules deriving overlapping tuples: derivations > new_tuples.
  Init("A(X) :- E(X,Y).\nA(X) :- E(X,Z), E(Z,W).", PathGraph(4));
  const std::vector<bool> all_dynamic(program_->idb_predicates().size(),
                                      true);
  IdbState state = MakeEmptyIdbState(*program_);
  Relation out(1);
  EvalStats stats;
  for (size_t r = 0; r < 2; ++r) {
    RulePlan plan = PlanRule(*program_, r, all_dynamic, -1);
    ExecutePlan(*ctx_, plan, state, nullptr, &out, &stats);
  }
  EXPECT_EQ(out.size(), 3u);            // {0,1,2}
  EXPECT_GT(stats.derivations, stats.new_tuples);
}

TEST_F(ExecutorFixture, ZeroArityEmit) {
  Init("Some :- E(X,Y).", PathGraph(2));
  EvalStats stats;
  Relation out = RunRule0(&stats);
  EXPECT_EQ(out.arity(), 0u);
  EXPECT_EQ(out.size(), 1u);
}

}  // namespace
}  // namespace inflog
