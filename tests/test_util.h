// Shared helpers for the inflog test suites.

#ifndef INFLOG_TESTS_TEST_UTIL_H_
#define INFLOG_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/ast/parser.h"
#include "src/ast/program.h"
#include "src/eval/idb_state.h"
#include "src/graphs/digraph.h"
#include "src/relation/database.h"

namespace inflog {
namespace testing {

/// Parses a program or aborts (for test fixtures where failure is a bug).
inline Program MustProgram(std::string_view text,
                           std::shared_ptr<SymbolTable> symbols = nullptr) {
  auto result = symbols ? ParseProgram(text, std::move(symbols))
                        : ParseProgram(text);
  INFLOG_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// Parses a database or aborts.
inline Database MustDatabase(std::string_view text) {
  auto result = ParseDatabase(text);
  INFLOG_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// Builds the database {E(u,v)} for a digraph, sharing `symbols`.
inline Database DbFromGraph(const Digraph& g,
                            std::shared_ptr<SymbolTable> symbols) {
  Database db(std::move(symbols));
  GraphToDatabase(g, "E", &db);
  return db;
}

/// The relation of IDB predicate `name` within a state.
inline const Relation& IdbRelation(const Program& program,
                                   const IdbState& state,
                                   std::string_view name) {
  auto pred = program.FindPredicate(name);
  INFLOG_CHECK(pred.ok()) << pred.status().ToString();
  const int idb = program.predicate(*pred).idb_index;
  INFLOG_CHECK(idb >= 0) << name << " is not an IDB predicate";
  return state.relations[idb];
}

/// A relation's tuples as sorted vectors of symbol names — readable in
/// test failure output.
inline std::vector<std::vector<std::string>> TuplesOf(
    const SymbolTable& symbols, const Relation& rel) {
  std::vector<std::vector<std::string>> out;
  for (const Tuple& t : rel.SortedTuples()) {
    std::vector<std::string> row;
    for (Value v : t) row.push_back(symbols.Name(v));
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Canonical string for a whole state (for set comparisons of states).
inline std::string CanonState(const Program& program, const IdbState& state) {
  return IdbStateToString(program, state);
}

/// Canonical sorted multiset of states.
inline std::multiset<std::string> CanonStates(
    const Program& program, const std::vector<IdbState>& states) {
  std::multiset<std::string> out;
  for (const IdbState& s : states) out.insert(CanonState(program, s));
  return out;
}

/// Set of unary-relation members as names, e.g. {"1","3"}.
inline std::set<std::string> UnarySet(const SymbolTable& symbols,
                                      const Relation& rel) {
  INFLOG_CHECK(rel.arity() == 1);
  std::set<std::string> out;
  for (size_t i = 0; i < rel.size(); ++i) {
    out.insert(symbols.Name(rel.Row(i)[0]));
  }
  return out;
}

}  // namespace testing
}  // namespace inflog

#endif  // INFLOG_TESTS_TEST_UTIL_H_
