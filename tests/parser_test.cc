// Tests for the DATALOG¬ parser, printer round-trips, and program
// analysis (EDB/IDB split, stratification, safety) on the paper's programs.

#include <gtest/gtest.h>

#include "src/ast/analysis.h"
#include "src/ast/parser.h"
#include "src/ast/printer.h"
#include "tests/test_util.h"

namespace inflog {
namespace {

using testing::MustDatabase;
using testing::MustProgram;

// The paper's π₁ (Section 2).
constexpr char kPi1[] = "T(X) :- E(Y,X), !T(Y).";
// The paper's π₂.
constexpr char kPi2[] =
    "S1(X,Y) :- E(X,Y).\n"
    "S1(X,Y) :- E(X,Z), S1(Z,Y).\n"
    "S2(X,Y,Z,W) :- S1(X,Y), !S1(Z,W).\n";
// The paper's π₃ (positive transitive closure).
constexpr char kPi3[] =
    "S(X,Y) :- E(X,Y).\n"
    "S(X,Y) :- E(X,Z), S(Z,Y).\n";

TEST(ParserTest, ParsesPi1) {
  Program p = MustProgram(kPi1);
  ASSERT_EQ(p.rules().size(), 1u);
  const Rule& r = p.rules()[0];
  EXPECT_EQ(p.predicate(r.head.predicate).name, "T");
  ASSERT_EQ(r.body.size(), 2u);
  EXPECT_EQ(r.body[0].kind, Literal::Kind::kAtom);
  EXPECT_EQ(r.body[1].kind, Literal::Kind::kNegAtom);
  // E is EDB, T is IDB.
  EXPECT_FALSE(p.predicate(*p.FindPredicate("E")).is_idb);
  EXPECT_TRUE(p.predicate(*p.FindPredicate("T")).is_idb);
  EXPECT_TRUE(p.HasNegation());
  EXPECT_FALSE(p.IsPositive());
}

TEST(ParserTest, ParsesPi2WithArities) {
  Program p = MustProgram(kPi2);
  EXPECT_EQ(p.rules().size(), 3u);
  EXPECT_EQ(p.predicate(*p.FindPredicate("S1")).arity, 2u);
  EXPECT_EQ(p.predicate(*p.FindPredicate("S2")).arity, 4u);
  EXPECT_EQ(p.idb_predicates().size(), 2u);
}

TEST(ParserTest, Pi3IsPositive) {
  Program p = MustProgram(kPi3);
  EXPECT_TRUE(p.IsPositive());
  EXPECT_FALSE(p.HasNegation());
}

TEST(ParserTest, NotKeywordNegates) {
  Program p = MustProgram("T(X) :- E(Y,X), not T(Y).");
  EXPECT_EQ(p.rules()[0].body[1].kind, Literal::Kind::kNegAtom);
}

TEST(ParserTest, EqualityAndInequality) {
  Program p = MustProgram("P(X,Y) :- D(X), D(Y), X != Y.\n"
                          "Q(X,Y) :- D(X), D(Y), X = Y.\n"
                          "R(X,Y) :- D(X), D(Y), X <> Y.\n");
  EXPECT_EQ(p.rules()[0].body[2].kind, Literal::Kind::kNeq);
  EXPECT_EQ(p.rules()[1].body[2].kind, Literal::Kind::kEq);
  EXPECT_EQ(p.rules()[2].body[2].kind, Literal::Kind::kNeq);
  // Inequality makes a program non-DATALOG per the paper's definition.
  EXPECT_FALSE(p.IsPositive());
}

TEST(ParserTest, ConstantsInHeadAndBody) {
  Program p = MustProgram("G(Z1,1,Z2) :- .\nH(X) :- E(X,foo).");
  const Rule& g = p.rules()[0];
  EXPECT_TRUE(g.body.empty());
  EXPECT_TRUE(g.head.args[0].IsVariable());
  EXPECT_TRUE(g.head.args[1].IsConstant());
  EXPECT_EQ(p.symbols().Name(g.head.args[1].id), "1");
  const Rule& h = p.rules()[1];
  EXPECT_TRUE(h.body[0].args[1].IsConstant());
  EXPECT_EQ(p.symbols().Name(h.body[0].args[1].id), "foo");
}

TEST(ParserTest, BodylessRuleWithoutColonDash) {
  Program p = MustProgram("Dom(X).");
  EXPECT_TRUE(p.rules()[0].body.empty());
  EXPECT_EQ(p.rules()[0].num_vars, 1u);
}

TEST(ParserTest, ZeroArityPredicates) {
  Program p = MustProgram("Flag :- E(X,Y).\nOther :- Flag, !Done.");
  EXPECT_EQ(p.predicate(*p.FindPredicate("Flag")).arity, 0u);
  EXPECT_EQ(p.predicate(*p.FindPredicate("Done")).arity, 0u);
}

TEST(ParserTest, CommentsAndWhitespace) {
  Program p = MustProgram(
      "% leading comment\n"
      "T(X) :- E(Y,X), % inline\n"
      "        !T(Y).\n"
      "// slash comment\n");
  EXPECT_EQ(p.rules().size(), 1u);
}

TEST(ParserTest, QuotedConstants) {
  Program p = MustProgram("P(X) :- E(X, 'Hello World').");
  EXPECT_EQ(p.symbols().Name(p.rules()[0].body[0].args[1].id),
            "Hello World");
}

TEST(ParserTest, VariablesSharedWithinRuleOnly) {
  Program p = MustProgram("A(X) :- E(X,X).\nB(X) :- F(X).");
  // Both rules use variable index 0 for their own X.
  EXPECT_EQ(p.rules()[0].num_vars, 1u);
  EXPECT_EQ(p.rules()[1].num_vars, 1u);
  EXPECT_EQ(p.rules()[0].body[0].args[0].id,
            p.rules()[0].body[0].args[1].id);
}

TEST(ParserTest, ArityConflictRejected) {
  auto r = ParseProgram("T(X) :- E(X).\nS(X,Y) :- E(X,Y).");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParserTest, SyntaxErrorsCarryLineNumbers) {
  auto r = ParseProgram("T(X) :- E(Y,X)\nU(X) :- E(X,X).");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos)
      << r.status().ToString();
}

TEST(ParserTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(ParseProgram("P(X) :- E(X, 'oops).").ok());
}

TEST(ParserTest, PrintParseRoundTrip) {
  const char* kSources[] = {
      kPi1, kPi2, kPi3,
      "G(Z1,1,Z2).",
      "P(X,Y) :- D(X), D(Y), X != Y, !Q(X).",
      "T(Z) :- !Q(U), !T(W).",
  };
  for (const char* src : kSources) {
    Program p1 = MustProgram(src);
    const std::string printed = p1.ToString();
    Program p2 = MustProgram(printed, p1.shared_symbols());
    EXPECT_EQ(printed, p2.ToString()) << "source: " << src;
  }
}

TEST(DatabaseParserTest, FactsAndUniverse) {
  Database db = MustDatabase(
      "E(1,2). E(2,3).\n"
      "V(a). Flag.\n"
      "@universe x y.\n");
  EXPECT_EQ((*db.GetRelation("E"))->size(), 2u);
  EXPECT_EQ((*db.GetRelation("V"))->size(), 1u);
  EXPECT_EQ((*db.GetRelation("Flag"))->arity(), 0u);
  EXPECT_EQ((*db.GetRelation("Flag"))->size(), 1u);
  // Universe: 1,2,3,a + declared x,y.
  EXPECT_EQ(db.universe().size(), 6u);
}

TEST(DatabaseParserTest, RejectsVariablesInFacts) {
  EXPECT_FALSE(ParseDatabase("E(X, 1).").ok());
}

TEST(DatabaseParserTest, RejectsArityDrift) {
  EXPECT_FALSE(ParseDatabase("E(1,2). E(3).").ok());
}

// --- Program analysis. ---

TEST(AnalysisTest, Pi1NotStratifiable) {
  // T depends negatively on itself: recursion through negation.
  const ProgramAnalysis a = AnalyzeProgram(MustProgram(kPi1));
  EXPECT_FALSE(a.stratifiable);
}

TEST(AnalysisTest, Pi2StratifiesIntoTwoLayers) {
  Program p = MustProgram(kPi2);
  const ProgramAnalysis a = AnalyzeProgram(p);
  ASSERT_TRUE(a.stratifiable);
  const int s1 = a.stratum[*p.FindPredicate("S1")];
  const int s2 = a.stratum[*p.FindPredicate("S2")];
  EXPECT_LT(s1, s2);  // S2 uses S1 negatively, so it sits strictly higher
  EXPECT_EQ(a.num_strata, 2);
}

TEST(AnalysisTest, PositiveProgramsAreStratifiable) {
  const ProgramAnalysis a = AnalyzeProgram(MustProgram(kPi3));
  EXPECT_TRUE(a.stratifiable);
  EXPECT_EQ(a.num_strata, 1);
}

TEST(AnalysisTest, ToggleRuleIsUnsafeAndUnstratifiable) {
  Program p = MustProgram("T(Z) :- !Q(U), !T(W).");
  const ProgramAnalysis a = AnalyzeProgram(p);
  EXPECT_FALSE(a.stratifiable);
  ASSERT_EQ(a.unsafe_vars.size(), 1u);
  // All three variables Z, U, W are unsafe (active-domain semantics).
  EXPECT_EQ(a.unsafe_vars[0].size(), 3u);
  // Only U and W occur under negation; the head variable Z does not.
  ASSERT_EQ(a.negation_unsafe_vars.size(), 1u);
  EXPECT_EQ(a.negation_unsafe_vars[0].size(), 2u);
  EXPECT_FALSE(a.AllSafe());
  EXPECT_FALSE(a.NegationSafe());
  EXPECT_EQ(a.warnings.size(), 1u);
}

TEST(AnalysisTest, NegationSafetyCheckNamesRuleAndVariables) {
  Program p = MustProgram("T(X) :- E(X,Y), !Q(Z).");
  const ProgramAnalysis a = AnalyzeProgram(p);
  EXPECT_FALSE(a.NegationSafe());
  const Status s = CheckNegationSafety(p);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  // The diagnostic names the offending rule and the offending variable —
  // and only that variable (X and Y are bound by E).
  EXPECT_NE(s.message().find("T(X) :- E(X,Y), !Q(Z)."), std::string::npos)
      << s.message();
  EXPECT_NE(s.message().find("variable(s) Z"), std::string::npos)
      << s.message();
}

TEST(AnalysisTest, NegationSafetyAcceptsBoundNegation) {
  // X is bound by a positive literal before the negated one uses it, so
  // the rule passes even though the program is head-unsafe elsewhere.
  Program p = MustProgram(
      "T(X) :- E(X,Y), !Q(X).\n"
      "H(Z) :- E(X,Y).\n");  // Z ranges over the active domain: allowed
  const ProgramAnalysis a = AnalyzeProgram(p);
  EXPECT_FALSE(a.AllSafe());      // the H rule is head-unsafe
  EXPECT_TRUE(a.NegationSafe());  // but no unbound variable under negation
  EXPECT_TRUE(CheckNegationSafety(p).ok());
}

TEST(AnalysisTest, NegationSafetyHonorsEqualityClosure) {
  // X is bound through X = Y with Y bound by D — the same closure range
  // restriction uses.
  Program p = MustProgram("P(X) :- D(Y), X = Y, !Q(X).");
  EXPECT_TRUE(CheckNegationSafety(p).ok());
}

TEST(AnalysisTest, NegationSafetyListsEveryOffendingRule) {
  Program p = MustProgram(
      "A(X) :- D(X).\n"
      "B(X) :- D(X), !C(Y).\n"
      "E(X) :- D(X), !F(Z).\n");
  const Status s = CheckNegationSafety(p);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("variable(s) Y"), std::string::npos);
  EXPECT_NE(s.message().find("variable(s) Z"), std::string::npos);
}

TEST(AnalysisTest, SafeRuleHasNoWarnings) {
  const ProgramAnalysis a = AnalyzeProgram(MustProgram(kPi3));
  EXPECT_TRUE(a.AllSafe());
  EXPECT_TRUE(a.warnings.empty());
}

TEST(AnalysisTest, EqualityBindingMakesSafe) {
  // X is bound through the equality chain X = Y, Y bound by D(Y).
  Program p = MustProgram("P(X) :- D(Y), X = Y, !Q(X).");
  const ProgramAnalysis a = AnalyzeProgram(p);
  EXPECT_TRUE(a.AllSafe());
}

TEST(AnalysisTest, EqualityChainClosure) {
  Program p = MustProgram("P(X) :- D(Z), X = Y, Y = Z.");
  const std::vector<bool> bound = BoundVariables(p.rules()[0]);
  EXPECT_TRUE(bound[0]);  // X via Y via Z
  EXPECT_TRUE(bound[1]);
  EXPECT_TRUE(bound[2]);
}

TEST(AnalysisTest, NegativeEdgeRecorded) {
  Program p = MustProgram(kPi2);
  const ProgramAnalysis a = AnalyzeProgram(p);
  bool found_negative = false;
  for (const DependencyEdge& e : a.edges) {
    if (e.head == *p.FindPredicate("S2") &&
        e.body == *p.FindPredicate("S1")) {
      found_negative = e.negative;
    }
  }
  // S2 uses S1 both positively and negatively; the edge is negative-
  // dominant.
  EXPECT_TRUE(found_negative);
}

TEST(AnalysisTest, MutualNegationNotStratifiable) {
  const ProgramAnalysis a = AnalyzeProgram(
      MustProgram("A(X) :- D(X), !B(X).\nB(X) :- D(X), !A(X)."));
  EXPECT_FALSE(a.stratifiable);
}

TEST(AnalysisTest, LongNegativeChainStratifies) {
  const ProgramAnalysis a = AnalyzeProgram(MustProgram(
      "A(X) :- D(X).\nB(X) :- D(X), !A(X).\nC(X) :- D(X), !B(X).\n"
      "F(X) :- D(X), !C(X)."));
  ASSERT_TRUE(a.stratifiable);
  EXPECT_EQ(a.num_strata, 4);
}

}  // namespace
}  // namespace inflog
