// Seeded random DATALOG¬ program + EDB + query generator, shared by the
// property tests (tests/semantics_property_test.cc) and the optimizer
// differential fuzzer (tests/optimizer_fuzz_test.cc).
//
// Programs are stratifiable BY CONSTRUCTION: predicates live in layers,
// positive body atoms reference the same or lower layers (same-layer
// references create recursion), and negated atoms reference strictly
// lower layers or the EDB. Rules are range-restricted (head variables
// and negated-atom variables are bound by positive body atoms), so the
// grounded pipelines stay cheap. Constants injected into rule bodies
// and an optional bound-argument query rule give the magic-sets
// rewrite real binding patterns to propagate.

#ifndef INFLOG_TESTS_PROGRAM_GENERATOR_H_
#define INFLOG_TESTS_PROGRAM_GENERATOR_H_

#include <string>
#include <vector>

#include "src/base/rng.h"

namespace inflog {
namespace testing {

/// Knobs for GenerateProgram. The defaults suit the differential
/// fuzzer: small domains so the four semantics stay fast, constants so
/// magic sets fires, negation on.
struct GeneratorOptions {
  /// Number of predicate layers, drawn uniformly from [min, max].
  int min_layers = 2;
  int max_layers = 3;
  /// Allow negated atoms (always into strictly lower layers / the EDB).
  bool allow_negation = true;
  /// Probability that an atom argument is a constant instead of a
  /// variable. 0 keeps the program constant-free.
  double constant_probability = 0.25;
  /// Also use the unary EDB predicate S/1 in rule bodies (the binary
  /// E/2 is always available).
  bool unary_edb = true;
  /// Probability of appending a goal-directed query rule
  /// (Q(Y) :- P(c,Y). or Q(X) :- E(c,X), P(X).) and making Q the
  /// output — the shape the magic-sets rewrite specializes.
  double point_query_probability = 0.6;
  /// Constants c0..c{domain_size-1}; facts_text draws from the same
  /// pool so bound queries have matches.
  int domain_size = 6;
  /// Number of E/2 facts in facts_text.
  int num_edges = 24;
};

/// One generated workload.
struct GeneratedProgram {
  /// Parsable rule text.
  std::string program_text;
  /// Parsable facts over E/2 (and S/1 when enabled), same constant
  /// pool as the rules.
  std::string facts_text;
  /// 1-2 IDB names to declare as outputs (the queried predicates).
  std::vector<std::string> outputs;
};

/// Generates one random stratifiable program, its EDB, and its queried
/// predicates. Equal (rng state, options) yield equal workloads.
GeneratedProgram GenerateProgram(Rng* rng,
                                 const GeneratorOptions& options = {});

/// The layered negation-bearing shape the cross-semantics property
/// suite sweeps (stratified = total well-founded = unique stable):
/// GenerateProgram specialized to the shared E/2-only EDB, no
/// constants, negation on — rule text only, facts come from a graph.
std::string RandomStratifiedProgramText(Rng* rng);

}  // namespace testing
}  // namespace inflog

#endif  // INFLOG_TESTS_PROGRAM_GENERATOR_H_
