// Example 1 / Theorems 1–2 end to end: encode a CNF instance as the
// database D(I) over (V, P, N), run the fixed program π_SAT, and read a
// satisfying assignment out of a fixpoint. Also demonstrates the US
// (unique-solution) question of Theorem 2.
//
// Usage:
//   sat_reduction                # built-in demo instances
//   sat_reduction file.cnf       # DIMACS input

#include <fstream>
#include <iostream>
#include <sstream>

#include "src/fixpoint/analysis.h"
#include "src/reductions/sat_db.h"
#include "src/sat/dimacs.h"

namespace {

int Fail(const inflog::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

int RunInstance(const std::string& name, const inflog::sat::Cnf& cnf) {
  using inflog::sat::Cnf;
  std::cout << "=== " << name << ": " << cnf.num_vars << " vars, "
            << cnf.clauses.size() << " clauses ===\n";

  auto symbols = std::make_shared<inflog::SymbolTable>();
  inflog::Program pi_sat = inflog::PiSatProgram(symbols);
  inflog::Database db = inflog::SatToDatabase(cnf, symbols);
  std::cout << "D(I): universe " << db.universe().size()
            << " elements, V/P/N sizes " << (*db.GetRelation("V"))->size()
            << "/" << (*db.GetRelation("P"))->size() << "/"
            << (*db.GetRelation("N"))->size() << "\n";

  auto analyzer = inflog::FixpointAnalyzer::Create(&pi_sat, &db);
  if (!analyzer.ok()) return Fail(analyzer.status());

  auto fixpoint = analyzer->FindFixpoint();
  if (!fixpoint.ok()) return Fail(fixpoint.status());
  if (!fixpoint->has_value()) {
    std::cout << "(pi_SAT, D(I)) has NO fixpoint  =>  I is "
                 "UNSATISFIABLE\n\n";
    return 0;
  }
  std::cout << "(pi_SAT, D(I)) has a fixpoint  =>  I is SATISFIABLE\n";
  auto assignment =
      inflog::DecodeAssignment(pi_sat, db, cnf, **fixpoint);
  if (!assignment.ok()) return Fail(assignment.status());
  std::cout << "decoded assignment:";
  for (int v = 0; v < cnf.num_vars; ++v) {
    std::cout << " v" << v << "=" << ((*assignment)[v] ? "1" : "0");
  }
  std::cout << "\nsatisfies I: "
            << (cnf.IsSatisfiedBy(*assignment) ? "yes" : "NO (bug!)")
            << "\n";

  auto unique = analyzer->UniqueFixpoint();
  if (!unique.ok()) return Fail(unique.status());
  std::cout << "Theorem 2 (US): unique satisfying assignment? "
            << (*unique == inflog::UniqueStatus::kUnique ? "yes" : "no")
            << "\n\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    auto cnf = inflog::sat::ParseDimacs(text.str());
    if (!cnf.ok()) return Fail(cnf.status());
    return RunInstance(argv[1], *cnf);
  }

  using inflog::sat::Neg;
  using inflog::sat::Pos;

  // (x0 ∨ x1) ∧ (¬x0 ∨ x2) ∧ (¬x1 ∨ ¬x2): satisfiable, several models.
  inflog::sat::Cnf sat_instance;
  for (int i = 0; i < 3; ++i) sat_instance.NewVar();
  sat_instance.AddClause({Pos(0), Pos(1)});
  sat_instance.AddClause({Neg(0), Pos(2)});
  sat_instance.AddClause({Neg(1), Neg(2)});
  if (int rc = RunInstance("demo-sat", sat_instance)) return rc;

  // A forced chain: unique model (Theorem 2's UNIQUE SAT).
  inflog::sat::Cnf unique_instance;
  for (int i = 0; i < 4; ++i) unique_instance.NewVar();
  unique_instance.AddClause({Pos(0)});
  for (int i = 0; i + 1 < 4; ++i) {
    unique_instance.AddClause({Neg(i), Pos(i + 1)});
    unique_instance.AddClause({Pos(i), Neg(i + 1)});
  }
  if (int rc = RunInstance("demo-unique", unique_instance)) return rc;

  // x ∧ ¬x: unsatisfiable.
  inflog::sat::Cnf unsat_instance;
  unsat_instance.NewVar();
  unsat_instance.AddClause({Pos(0)});
  unsat_instance.AddClause({Neg(0)});
  return RunInstance("demo-unsat", unsat_instance);
}
