// The Section 2 example as a tour: the fixpoint structure of
//   π₁ = T(x) ← E(y,x), ¬T(y)
// across the paper's graph families — unique on paths Lₙ, none on odd
// cycles, two on even cycles, and 2ᵏ pairwise-incomparable fixpoints
// (with no least one) on Gₖ, the disjoint union of k copies of C₄.

#include <cstdio>
#include <iostream>

#include "src/core/engine.h"
#include "src/graphs/digraph.h"

namespace {

struct Row {
  std::string family;
  size_t fixpoints;
  bool unique;
  bool least;
};

inflog::Result<Row> Analyze(const std::string& name,
                            const inflog::Digraph& graph) {
  inflog::Engine engine;
  INFLOG_RETURN_IF_ERROR(engine.LoadProgramText("T(X) :- E(Y,X), !T(Y)."));
  inflog::GraphToDatabase(graph, "E", engine.mutable_database());
  INFLOG_ASSIGN_OR_RETURN(inflog::FixpointAnalyzer analyzer,
                          engine.MakeAnalyzer());
  INFLOG_ASSIGN_OR_RETURN(const uint64_t count, analyzer.CountFixpoints());
  INFLOG_ASSIGN_OR_RETURN(const inflog::UniqueStatus unique,
                          analyzer.UniqueFixpoint());
  INFLOG_ASSIGN_OR_RETURN(const inflog::LeastFixpointOutcome least,
                          analyzer.LeastFixpoint());
  return Row{name, count, unique == inflog::UniqueStatus::kUnique,
             least.has_least};
}

}  // namespace

int main() {
  std::cout << "Fixpoint structure of pi1 = T(x) <- E(y,x), !T(y)\n"
            << "(Kolaitis & Papadimitriou, Section 2)\n\n";
  std::printf("%-12s %10s %8s %7s\n", "database", "fixpoints", "unique",
              "least");
  std::printf("%-12s %10s %8s %7s\n", "--------", "---------", "------",
              "-----");

  auto print = [](const inflog::Result<Row>& row) {
    if (!row.ok()) {
      std::cerr << "error: " << row.status().ToString() << "\n";
      std::exit(1);
    }
    std::printf("%-12s %10zu %8s %7s\n", row->family.c_str(),
                row->fixpoints, row->unique ? "yes" : "no",
                row->least ? "yes" : "no");
  };

  for (size_t n : {3u, 4u, 5u, 8u}) {
    print(Analyze("L" + std::to_string(n), inflog::PathGraph(n)));
  }
  for (size_t n : {3u, 5u, 7u}) {
    print(Analyze("C" + std::to_string(n), inflog::CycleGraph(n)));
  }
  for (size_t n : {4u, 6u, 8u}) {
    print(Analyze("C" + std::to_string(n), inflog::CycleGraph(n)));
  }
  for (size_t k : {1u, 2u, 3u, 4u, 5u, 6u}) {
    print(Analyze("G" + std::to_string(k),
                  inflog::DisjointCycles(k, 4)));
  }

  std::cout << "\nReadings:\n"
            << "  * paths: a unique fixpoint (the even 1-based "
               "positions);\n"
            << "  * odd cycles: no fixpoint at all;\n"
            << "  * even cycles: two incomparable fixpoints;\n"
            << "  * G_k: 2^k pairwise-incomparable fixpoints and no "
               "least one —\n"
            << "    exponentially many in the size of the database.\n";
  return 0;
}
