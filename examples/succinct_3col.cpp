// Theorem 4: SUCCINCT 3-COLORING compiled to fixpoint existence.
//
// A Boolean circuit with 2n inputs presents a graph on {0,1}ⁿ. The π_SC
// compiler emits one arity-2n relation per gate plus the π_COL rules over
// the 2-element universe {0,1}; the program has a fixpoint iff the
// presented graph is 3-colorable. The example also materializes the
// exponential expansion to show the succinct/explicit size gap that makes
// the combined-complexity problem NEXP-complete.

#include <iostream>

#include "src/fixpoint/analysis.h"
#include "src/reductions/succinct.h"
#include "src/reductions/three_coloring.h"

namespace {

int Fail(const inflog::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

int RunCase(const std::string& name, const inflog::SuccinctGraph& sg) {
  std::cout << "=== " << name << " ===\n";
  std::cout << "circuit: " << sg.circuit.num_gates() << " gates over 2n="
            << 2 * sg.n << " inputs; presents a graph on " << sg.num_vertices()
            << " vertices\n";

  const inflog::Digraph expanded = sg.Expand();
  std::cout << "explicit expansion: " << expanded.num_vertices()
            << " vertices, " << expanded.num_edges() << " edges\n";

  auto symbols = std::make_shared<inflog::SymbolTable>();
  auto instance = inflog::BuildSuccinct3Col(sg, symbols);
  if (!instance.ok()) return Fail(instance.status());
  std::cout << "pi_SC: " << instance->program.rules().size()
            << " rules, universe {0,1}\n";

  inflog::AnalyzeOptions options;
  options.grounder.max_ground_rules = 50'000'000;
  auto analyzer = inflog::FixpointAnalyzer::Create(
      &instance->program, &instance->database, options);
  if (!analyzer.ok()) return Fail(analyzer.status());
  std::cout << "grounding: " << analyzer->ground().rules.size()
            << " ground rules, " << analyzer->ground().atoms.size()
            << " ground atoms\n";

  auto fixpoint = analyzer->FindFixpoint();
  if (!fixpoint.ok()) return Fail(fixpoint.status());
  const bool oracle = inflog::IsThreeColorable(expanded);
  std::cout << "fixpoint exists: " << (fixpoint->has_value() ? "yes" : "no")
            << "   (oracle says 3-colorable: " << (oracle ? "yes" : "no")
            << ")\n";
  if (fixpoint->has_value() != oracle) {
    std::cerr << "MISMATCH against the oracle!\n";
    return 1;
  }
  if (fixpoint->has_value()) {
    auto colors = inflog::DecodeSuccinctColoring(*instance, sg, **fixpoint);
    if (!colors.ok()) return Fail(colors.status());
    std::cout << "decoded coloring:";
    const char* names[] = {"R", "B", "G"};
    for (size_t v = 0; v < colors->size(); ++v) {
      std::cout << " " << v << ":" << names[(*colors)[v]];
    }
    std::cout << "  proper: "
              << (inflog::IsProperColoring(expanded, *colors) ? "yes"
                                                              : "NO (bug!)")
              << "\n";
  }
  std::cout << "\n";
  return 0;
}

}  // namespace

int main() {
  if (int rc = RunCase("K_2 (n=1, complete)",
                       inflog::SuccinctCompleteGraph(1))) {
    return rc;
  }
  if (int rc = RunCase("K_4 (n=2, complete — needs 4 colors)",
                       inflog::SuccinctCompleteGraph(2))) {
    return rc;
  }
  if (int rc = RunCase("Q_2 (n=2, hypercube — bipartite)",
                       inflog::SuccinctHypercube(2))) {
    return rc;
  }
  if (int rc = RunCase("C_8 (n=3, succinct even cycle)",
                       inflog::SuccinctCycle(3))) {
    return rc;
  }
  std::cout << "The succinct instance size grows with the circuit (poly in "
               "n)\nwhile the presented graph has 2^n vertices — the "
               "expression-\ncomplexity blow-up behind Theorem 4's NEXP-"
               "completeness.\n";
  return 0;
}
