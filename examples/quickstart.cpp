// Quickstart: load a DATALOG¬ program and a database, inspect the
// analysis, evaluate the inflationary semantics, and ask the Section 3
// fixpoint questions.
//
// The program is the paper's π₁:  T(x) ← E(y,x), ¬T(y)  — "x has a
// predecessor outside T" — whose fixpoint structure motivates the whole
// paper.

#include <cstdio>
#include <iostream>

#include "src/core/engine.h"

namespace {

int Fail(const inflog::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

}  // namespace

int main() {
  inflog::Engine engine;

  // --- Load π₁ and a 6-vertex path 1→2→...→6. ---
  if (auto s = engine.LoadProgramText("T(X) :- E(Y,X), !T(Y).\n"); !s.ok()) {
    return Fail(s);
  }
  if (auto s = engine.LoadDatabaseText(
          "E(1,2). E(2,3). E(3,4). E(4,5). E(5,6).\n");
      !s.ok()) {
    return Fail(s);
  }

  auto description = engine.Describe();
  if (!description.ok()) return Fail(description.status());
  std::cout << "== program ==\n" << *description << "\n";

  // --- Inflationary semantics (Section 4): total, PTIME. ---
  auto inflationary = engine.Inflationary();
  if (!inflationary.ok()) return Fail(inflationary.status());
  auto t_rel = engine.RelationOf(inflationary->state, "T");
  if (!t_rel.ok()) return Fail(t_rel.status());
  std::cout << "== inflationary semantics ==\n"
            << "T = " << (*t_rel)->ToString(*engine.symbols()) << "\n"
            << "stages: " << inflationary->num_stages << "\n\n";

  // --- Fixpoint analysis (Section 3): NP/US/FONP questions. ---
  auto analyzer = engine.MakeAnalyzer();
  if (!analyzer.ok()) return Fail(analyzer.status());

  auto fixpoints = analyzer->EnumerateFixpoints();
  if (!fixpoints.ok()) return Fail(fixpoints.status());
  std::cout << "== fixpoints of (pi1, L6) ==\n"
            << "count: " << fixpoints->size() << "\n";
  for (const inflog::IdbState& fp : *fixpoints) {
    auto rel = engine.RelationOf(fp, "T");
    if (!rel.ok()) return Fail(rel.status());
    std::cout << "  T = " << (*rel)->ToString(*engine.symbols()) << "\n";
  }

  auto unique = analyzer->UniqueFixpoint();
  if (!unique.ok()) return Fail(unique.status());
  std::cout << "unique fixpoint: "
            << (*unique == inflog::UniqueStatus::kUnique ? "yes" : "no")
            << "\n";

  auto least = analyzer->LeastFixpoint();
  if (!least.ok()) return Fail(least.status());
  std::cout << "least fixpoint exists: "
            << (least->has_least ? "yes" : "no") << "  (decided with "
            << least->sat_calls << " SAT calls)\n\n";

  // --- The same program under the other semantics. ---
  auto wf = engine.WellFounded();
  if (!wf.ok()) return Fail(wf.status());
  auto wf_t = engine.RelationOf(wf->true_state, "T");
  std::cout << "== well-founded model ==\n"
            << "T(true) = " << (*wf_t)->ToString(*engine.symbols())
            << "  total: " << (wf->total ? "yes" : "no") << "\n";

  auto stable = engine.StableModels();
  if (!stable.ok()) return Fail(stable.status());
  std::cout << "stable models: " << stable->models.size() << "\n";

  auto stratified = engine.Stratified();
  std::cout << "stratified semantics: "
            << (stratified.ok() ? "defined"
                                : stratified.status().ToString())
            << "\n";
  std::cout << "\n(pi1 is not stratifiable; the inflationary semantics "
               "still gives it a meaning — the paper's point.)\n";
  return 0;
}
