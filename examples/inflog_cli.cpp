// inflog_cli: evaluate a DATALOG¬ program file against a database file
// under a chosen semantics — the downstream-user entry point.
//
// Usage:
//   inflog_cli [--threads=N] [--shards=S]
//     [--scheduler=auto|static|stealing] [--min-slice-rows=R]
//     [--steal-variance=V] [--optimize=LIST] [--list-optimize-passes]
//     [--query=NAMES] [--reject-unsafe-negation] [--stats]
//     [--sat-preprocess=0|1] [--sat-deletion=0|1] [--sat-portfolio=K]
//     [--sat-reduce-interval=N] [--dump-cnf=FILE]
//     [--apply-updates=FILE] [--verify-incremental]
//     [--serve] [--serve-threads=N] [--serve-cache=0|1]
//     [--compact-threshold=F] [--update-batch=N]
//     PROGRAM.dlog DATABASE.facts [SEMANTICS]
//
// SEMANTICS is one of:
//   inflationary (default) | stratified | wellfounded | stable |
//   fixpoints | analyze
//
// --threads=N runs the relational fixpoint stages on N threads (default:
// hardware concurrency; --threads=1 is the serial baseline). --shards=S
// hash-shards the IDB relations S ways — S a power of two ≤ 64 — so the
// stage merge parallelizes shard-wise (default 0 = auto: one shard per
// thread; --shards=1 is the unsharded layout). --scheduler picks how
// parallel stages partition their delta rows: auto (default; per stage,
// flip to work stealing when the estimated slice-work variance is high,
// otherwise keep the static slicer), static (up-front equal-row slices)
// or stealing (per-worker deques with dynamic chunk splitting — faster
// on skewed stages, see bench E11). --min-slice-rows=R tunes the serial
// cutoff / slice granularity / tiny-plan batching threshold (0 = default
// 64), and --steal-variance=V the auto scheduler's coefficient-of-
// variation flip threshold (0 = default 1.0; lower steals more eagerly).
// Results are deterministic and identical for every (threads, shards,
// scheduler, min-slice-rows, steal-variance) combination.
// --optimize=LIST selects the optimizer passes for the relational
// pipelines (inflationary, stratified): "all" (the default), "none"
// (today's greedy plans exactly), or a comma list of dce, reorder,
// share, magic, inline (--list-optimize-passes prints the tokens, one
// per line, and exits — scripts validate against it instead of
// hardcoding). Results on the queried predicates are identical for
// every selection. --query=NAMES (a comma list of IDB predicates)
// declares the output predicates: with dce enabled, rules unreachable
// from them are dropped, and the magic/inline program rewrites
// specialize the program toward them, so only the listed relations are
// specified (and printed). Without --query, dce, magic and inline are
// all no-ops.
// --reject-unsafe-negation fails instead of evaluating rules whose
// negated literal has a variable bound by no positive body literal (by
// default such rules get the paper's active-domain reading). --stats
// prints the executor counters (index probes, posting-list
// intersections, rows matched, steals, auto-scheduler decisions, slice
// histogram, ...) after the result, so bench numbers can be explained
// from the CLI; for modes without a relational fixpoint run it says so.
//
// The --sat-* flags configure the CDCL core behind the SAT-backed modes
// (stable, fixpoints): --sat-preprocess=0|1 toggles the preprocessing
// front-end (root BCP, pure literals, bounded variable elimination;
// default 0), --sat-deletion=0|1 the LBD-scored learnt-clause database
// reduction (default 1), --sat-portfolio=K races K diversified solver
// instances and takes the first definitive answer (default 1 = the plain
// single solver), and --sat-reduce-interval=N sets the conflicts between
// learnt-DB reductions (0 = the built-in default, 2000). Results are
// bit-identical for every --sat-* combination — the enumerations are
// canonicalized — only the sat_* search counters vary. --dump-cnf=FILE
// writes the Clark-completion encoding of the loaded (program, database)
// as DIMACS CNF to FILE and continues with the requested run.
//
// --apply-updates=FILE switches the run into incremental view
// maintenance: the program is evaluated once under the chosen semantics
// (inflationary, stratified, wellfounded or stable), then each
// non-empty, non-comment line of FILE is applied as one update batch of
// whitespace-separated `+Rel(a,b)` inserts and `-Rel(a)` deletes, with
// a per-update summary line (EDB/IDB churn, counting vs DRed units,
// whether the update fell back to the recompute oracle). The maintained
// state prints once at the end; with --stats the cumulative incremental_*
// counters follow. --verify-incremental cross-checks every maintained
// update against a from-scratch evaluation (expensive — each update then
// costs a full recompute; meant for tests and oracle sweeps).
// --update-batch=N coalesces every N consecutive update lines into one
// batch before applying (net-delta semantics: deletes apply first,
// inserts win within the window), and --compact-threshold=F compacts any
// relation whose dead-row share exceeds F after an update (default 0.3;
// 0 disables) — both apply to --apply-updates and --serve alike.
//
// --serve switches into serving mode: the program is evaluated once,
// published as epoch snapshot 0, and newline-delimited commands are read
// from stdin:
//   ?T(1,X)            point/join query (same term syntax as rules);
//                      prints "[epoch E] ?T(1,X) = {...}" (sets render
//                      exactly like the batch-mode relation printout,
//                      ground queries print true/false)
//   +E(1,2) -E(2,3)    one update batch (same syntax as --apply-updates);
//                      publishes the next epoch when the batch window
//                      flushes
//   .epoch / .stats / .flush   print the current epoch / the serve
//                      counters / flush a partial update window
// Consecutive query lines form a group evaluated concurrently by
// --serve-threads=N reader threads against one pinned snapshot; answers
// print in input order and are bit-identical to a fresh batch evaluation
// of that epoch regardless of N. --serve-cache=0 disables the
// delta-invalidated query-result cache (answers are identical either
// way; only the cache_* counters change).
//
// Examples (data files ship in examples/data/):
//   inflog_cli data/pi1.dlog data/path6.facts fixpoints
//   inflog_cli --threads=4 --shards=8 data/distance.dlog data/shortcut.facts
//   inflog_cli --threads=8 --scheduler=stealing --stats \
//     data/distance.dlog data/shortcut.facts

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/thread_pool.h"
#include "src/core/engine.h"
#include "src/sat/dimacs.h"

namespace {

int Fail(const inflog::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

inflog::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return inflog::Status::NotFound("cannot open " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

// With --query, only the listed predicates print: the others are
// unspecified once dead-rule elimination drops their rules.
std::vector<std::string> g_query;

void PrintState(const inflog::Engine& engine, const inflog::IdbState& state) {
  auto program = engine.program();
  INFLOG_CHECK(program.ok());
  for (uint32_t pred : (*program)->idb_predicates()) {
    const auto& info = (*program)->predicate(pred);
    if (!g_query.empty() &&
        std::find(g_query.begin(), g_query.end(), info.name) ==
            g_query.end()) {
      continue;
    }
    std::cout << "  " << info.name << " = "
              << state.relations[info.idb_index].ToString(*engine.symbols())
              << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  // 0 = hardware concurrency (the default); 1 = the serial baseline.
  size_t num_threads = 0;
  // 0 = auto (one shard per resolved thread); 1 = the unsharded layout.
  size_t num_shards = 0;
  // 0 = the evaluator default (64 rows).
  size_t min_slice_rows = 0;
  // 0 = the evaluator default (CV 1.0); only read by --scheduler=auto.
  double steal_variance = 0;
  inflog::StageScheduler scheduler = inflog::StageScheduler::kAuto;
  inflog::OptimizerPasses optimizer_passes = inflog::OptimizerPasses::All();
  bool reject_unsafe_negation = false;
  bool print_stats = false;
  std::string apply_updates;  // empty = plain one-shot evaluation
  bool verify_incremental = false;
  bool serve_mode = false;
  size_t serve_threads = 1;  // reader threads for serve-mode query groups
  size_t serve_cache = 1;    // query-result cache on/off
  double compact_threshold = 0.3;  // dead-row share; 0 disables
  size_t update_batch = 1;         // update lines coalesced per ApplyUpdate
  // CDCL core knobs for the SAT-backed modes; the defaults match
  // sat::SolverOptions (preprocessing off, deletion on, plain solver).
  size_t sat_preprocess = 0;
  size_t sat_deletion = 1;
  size_t sat_portfolio = 1;
  size_t sat_reduce_interval = 0;  // 0 = the solver default (2000)
  std::string dump_cnf;            // empty = no DIMACS dump
  std::vector<std::string> args;
  auto parse_count = [](const char* flag, const std::string& value,
                        long max, size_t* out) {
    errno = 0;
    char* end = nullptr;
    const long n = std::strtol(value.c_str(), &end, 10);
    if (value.empty() || end != value.c_str() + value.size() || n < 0 ||
        errno == ERANGE || n > max) {
      std::cerr << "error: " << flag << " expects an integer in [0, "
                << max << "], got '" << value << "'\n";
      return false;
    }
    *out = static_cast<size_t>(n);
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto flag_value = [&](const char* flag, long max, size_t* out) -> int {
      const std::string eq = std::string(flag) + "=";
      if (arg.rfind(eq, 0) == 0) {
        return parse_count(flag, arg.substr(eq.size()), max, out) ? 1 : -1;
      }
      if (arg == flag) {
        if (i + 1 >= argc) {
          std::cerr << "error: " << flag << " requires a value\n";
          return -1;
        }
        return parse_count(flag, argv[++i], max, out) ? 1 : -1;
      }
      return 0;
    };
    if (arg == "--stats") {
      print_stats = true;
      continue;
    }
    if (arg == "--reject-unsafe-negation") {
      reject_unsafe_negation = true;
      continue;
    }
    if (arg == "--verify-incremental") {
      verify_incremental = true;
      continue;
    }
    if (arg == "--serve") {
      serve_mode = true;
      continue;
    }
    if (arg == "--compact-threshold" ||
        arg.rfind("--compact-threshold=", 0) == 0) {
      std::string value;
      if (arg == "--compact-threshold") {  // two-token form
        if (i + 1 >= argc) {
          std::cerr << "error: --compact-threshold requires a value\n";
          return 2;
        }
        value = argv[++i];
      } else {
        value = arg.substr(sizeof("--compact-threshold=") - 1);
      }
      errno = 0;
      char* end = nullptr;
      const double v = std::strtod(value.c_str(), &end);
      if (value.empty() || end != value.c_str() + value.size() ||
          errno == ERANGE || !std::isfinite(v) || v < 0 || v > 1) {
        std::cerr << "error: --compact-threshold expects a number in "
                     "[0, 1], got '"
                  << value << "'\n";
        return 2;
      }
      compact_threshold = v;
      continue;
    }
    if (arg == "--apply-updates" || arg.rfind("--apply-updates=", 0) == 0) {
      if (arg == "--apply-updates") {  // two-token form
        if (i + 1 >= argc) {
          std::cerr << "error: --apply-updates requires a file\n";
          return 2;
        }
        apply_updates = argv[++i];
      } else {
        apply_updates = arg.substr(sizeof("--apply-updates=") - 1);
      }
      if (apply_updates.empty()) {
        std::cerr << "error: --apply-updates requires a file\n";
        return 2;
      }
      continue;
    }
    if (arg == "--dump-cnf" || arg.rfind("--dump-cnf=", 0) == 0) {
      if (arg == "--dump-cnf") {  // two-token form
        if (i + 1 >= argc) {
          std::cerr << "error: --dump-cnf requires a file\n";
          return 2;
        }
        dump_cnf = argv[++i];
      } else {
        dump_cnf = arg.substr(sizeof("--dump-cnf=") - 1);
      }
      if (dump_cnf.empty()) {
        std::cerr << "error: --dump-cnf requires a file\n";
        return 2;
      }
      continue;
    }
    if (arg == "--scheduler" || arg.rfind("--scheduler=", 0) == 0) {
      std::string value;
      if (arg == "--scheduler") {  // the two-token form, like --threads N
        if (i + 1 >= argc) {
          std::cerr << "error: --scheduler requires a value\n";
          return 2;
        }
        value = argv[++i];
      } else {
        value = arg.substr(sizeof("--scheduler=") - 1);
      }
      auto parsed = inflog::ParseStageScheduler(value);
      if (!parsed.ok()) {
        std::cerr << "error: " << parsed.status().ToString() << "\n";
        return 2;
      }
      scheduler = *parsed;
      continue;
    }
    if (arg == "--list-optimize-passes") {
      for (const std::string_view token : inflog::OptimizerPassTokens()) {
        std::cout << token << "\n";
      }
      return 0;
    }
    if (arg == "--optimize" || arg.rfind("--optimize=", 0) == 0) {
      std::string value;
      if (arg == "--optimize") {  // two-token form
        if (i + 1 >= argc) {
          std::cerr << "error: --optimize requires a value\n";
          return 2;
        }
        value = argv[++i];
      } else {
        value = arg.substr(sizeof("--optimize=") - 1);
      }
      auto parsed = inflog::ParseOptimizerPasses(value);
      if (!parsed.ok()) {
        std::cerr << "error: " << parsed.status().ToString() << "\n";
        return 2;
      }
      optimizer_passes = *parsed;
      continue;
    }
    if (arg == "--query" || arg.rfind("--query=", 0) == 0) {
      std::string value;
      if (arg == "--query") {  // two-token form
        if (i + 1 >= argc) {
          std::cerr << "error: --query requires a value\n";
          return 2;
        }
        value = argv[++i];
      } else {
        value = arg.substr(sizeof("--query=") - 1);
      }
      size_t start = 0;
      while (start <= value.size()) {
        const size_t comma = value.find(',', start);
        const size_t end = comma == std::string::npos ? value.size() : comma;
        if (end > start) g_query.push_back(value.substr(start, end - start));
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      if (g_query.empty()) {
        std::cerr << "error: --query expects a comma list of IDB "
                     "predicate names, got '"
                  << value << "'\n";
        return 2;
      }
      continue;
    }
    if (arg == "--steal-variance" || arg.rfind("--steal-variance=", 0) == 0) {
      std::string value;
      if (arg == "--steal-variance") {  // two-token form
        if (i + 1 >= argc) {
          std::cerr << "error: --steal-variance requires a value\n";
          return 2;
        }
        value = argv[++i];
      } else {
        value = arg.substr(sizeof("--steal-variance=") - 1);
      }
      errno = 0;
      char* end = nullptr;
      const double v = std::strtod(value.c_str(), &end);
      if (value.empty() || end != value.c_str() + value.size() ||
          errno == ERANGE || !std::isfinite(v) || v < 0) {
        std::cerr << "error: --steal-variance expects a non-negative "
                     "number, got '"
                  << value << "'\n";
        return 2;
      }
      steal_variance = v;
      continue;
    }
    int handled = flag_value("--threads", 1024, &num_threads);
    if (handled == 0) {
      // The evaluator clamps shard counts to kMaxShards; reject higher
      // values here instead of silently running a different sweep point.
      handled = flag_value(
          "--shards",
          static_cast<long>(inflog::EvalContextOptions::kMaxShards),
          &num_shards);
    }
    if (handled == 0) {
      handled = flag_value("--min-slice-rows", 1 << 20, &min_slice_rows);
    }
    if (handled == 0) {
      handled = flag_value("--sat-preprocess", 1, &sat_preprocess);
    }
    if (handled == 0) {
      handled = flag_value("--sat-deletion", 1, &sat_deletion);
    }
    if (handled == 0) {
      // The portfolio races K diversified members; 64 is far beyond any
      // sensible core count and keeps typos from spawning thousands.
      handled = flag_value("--sat-portfolio", 64, &sat_portfolio);
    }
    if (handled == 0) {
      handled =
          flag_value("--sat-reduce-interval", 1 << 20, &sat_reduce_interval);
    }
    if (handled == 0) {
      // 64 reader threads is far beyond any sensible CLI use and keeps
      // typos from spawning thousands.
      handled = flag_value("--serve-threads", 64, &serve_threads);
    }
    if (handled == 0) {
      handled = flag_value("--serve-cache", 1, &serve_cache);
    }
    if (handled == 0) {
      handled = flag_value("--update-batch", 1 << 20, &update_batch);
    }
    if (handled < 0) return 2;
    if (handled > 0) continue;
    args.push_back(arg);
  }
  if (num_shards != 0 && (num_shards & (num_shards - 1)) != 0) {
    // The evaluator rounds shard counts up to a power of two; reject the
    // request here rather than silently running a different sweep point.
    std::cerr << "error: --shards must be 0 (auto) or a power of two, got "
              << num_shards << "\n";
    return 2;
  }
  if (args.size() < 2) {
    std::cerr << "usage: " << argv[0]
              << " [--threads=N] [--shards=S] "
                 "[--scheduler=auto|static|stealing] [--min-slice-rows=R] "
                 "[--steal-variance=V] [--optimize=all|none|dce,reorder,"
                 "share,magic,inline] [--list-optimize-passes] "
                 "[--query=NAMES] [--reject-unsafe-negation] "
                 "[--stats] [--sat-preprocess=0|1] [--sat-deletion=0|1] "
                 "[--sat-portfolio=K] [--sat-reduce-interval=N] "
                 "[--dump-cnf=FILE] [--apply-updates=FILE] "
                 "[--verify-incremental] [--serve] [--serve-threads=N] "
                 "[--serve-cache=0|1] [--compact-threshold=F] "
                 "[--update-batch=N] "
                 "PROGRAM.dlog DATABASE.facts "
                 "[inflationary|stratified|wellfounded|stable|fixpoints|"
                 "analyze]\n";
    return 2;
  }
  const std::string semantics = args.size() > 2 ? args[2] : "inflationary";

  inflog::Engine engine;
  auto program_text = ReadFile(args[0]);
  if (!program_text.ok()) return Fail(program_text.status());
  if (auto s = engine.LoadProgramText(*program_text); !s.ok()) return Fail(s);
  auto db_text = ReadFile(args[1]);
  if (!db_text.ok()) return Fail(db_text.status());
  if (auto s = engine.LoadDatabaseText(*db_text); !s.ok()) return Fail(s);

  inflog::sat::SolverOptions sat_options;
  sat_options.preprocess = sat_preprocess != 0;
  sat_options.reduce_db = sat_deletion != 0;
  sat_options.portfolio_threads = sat_portfolio == 0 ? 1 : sat_portfolio;
  sat_options.reduce_base = sat_reduce_interval;  // 0 = solver default

  if (!dump_cnf.empty()) {
    // Ground + Clark-complete the loaded (program, database) and write
    // the encoding the SAT-backed modes solve, then continue normally.
    auto analyzer = engine.MakeAnalyzer();
    if (!analyzer.ok()) return Fail(analyzer.status());
    std::ofstream out(dump_cnf);
    if (!out) {
      return Fail(inflog::Status::NotFound("cannot open " + dump_cnf));
    }
    out << inflog::sat::ToDimacs(analyzer->encoding().cnf);
    out.flush();
    if (!out) {
      return Fail(inflog::Status::Internal("cannot write " + dump_cnf));
    }
    std::cout << "wrote completion CNF to " << dump_cnf << "\n";
  }

  // The executor counters only exist for the relational-fixpoint
  // semantics; everywhere else --stats says so instead of vanishing.
  auto stats_not_applicable = [&](const std::string& mode) {
    if (print_stats) {
      std::cout << "stats: n/a (" << mode
                << " does not run the relational fixpoint executor)\n";
    }
  };
  if (semantics == "analyze") {
    auto description = engine.Describe();
    if (!description.ok()) return Fail(description.status());
    std::cout << *description;
    stats_not_applicable("analyze");
    return 0;
  }
  // The four semantics all route through the engine's unified dispatch;
  // the variant `detail` carries each one's specific bookkeeping.
  if (auto kind = inflog::ParseSemanticsKind(semantics); kind.ok()) {
    inflog::EvalOptions options;
    options.num_threads = num_threads;
    options.num_shards = num_shards;
    options.scheduler = scheduler;
    options.min_slice_rows = min_slice_rows;
    options.steal_variance = steal_variance;
    options.reject_unsafe_negation = reject_unsafe_negation;
    options.optimizer_passes = optimizer_passes;
    options.output_predicates = g_query;
    options.sat = sat_options;
    if (serve_mode && !apply_updates.empty()) {
      std::cerr << "error: --serve and --apply-updates are exclusive\n";
      return 2;
    }
    // One update summary line per flushed batch, shared by the
    // --apply-updates loop and serve mode.
    size_t update_no = 0;
    auto print_update = [&](const inflog::UpdateResult& result) {
      const inflog::EvalStats& s = result.stats;
      std::cout << "update " << ++update_no << ": edb +"
                << s.incremental_edb_inserted << " -"
                << s.incremental_edb_deleted << ", idb +"
                << s.incremental_idb_inserted << " -"
                << s.incremental_idb_deleted;
      if (result.used_oracle) {
        std::cout << " (oracle recompute)";
      } else {
        std::cout << " (counting units " << s.incremental_counting_units
                  << ", dred units " << s.incremental_dred_units << ")";
      }
      std::cout << "\n";
    };
    auto print_serve_stats = [](const inflog::EvalStats& s) {
      std::cout << "serve stats:\n"
                << "  serve_epochs_published " << s.serve_epochs_published
                << "\n"
                << "  serve_snapshots_pinned " << s.serve_snapshots_pinned
                << "\n"
                << "  serve_queries          " << s.serve_queries << "\n"
                << "  serve_updates          " << s.serve_updates << "\n"
                << "  serve_batched_updates  " << s.serve_batched_updates
                << "\n"
                << "  serve_compactions      " << s.serve_compactions << "\n"
                << "  cache_hits             " << s.cache_hits << "\n"
                << "  cache_misses           " << s.cache_misses << "\n"
                << "  cache_invalidations    " << s.cache_invalidations
                << "\n";
    };
    if (serve_mode) {
      options.verify_incremental = verify_incremental;
      // Output predicates would let dead-rule elimination drop rules the
      // maintainer needs intact; the session maintains every IDB.
      options.output_predicates.clear();
      options.serving.cache = serve_cache != 0;
      options.serving.compact_threshold = compact_threshold;
      options.serving.update_batch = update_batch == 0 ? 1 : update_batch;
      if (auto s = engine.BeginServing(*kind, options); !s.ok()) {
        return Fail(s);
      }
      auto serving = engine.serving();
      if (!serving.ok()) return Fail(serving.status());
      inflog::serve::ServingSession* session = *serving;
      inflog::ThreadPool pool(serve_threads == 0 ? 0 : serve_threads - 1);
      std::cout << "serving epoch " << session->epoch() << " ("
                << inflog::SemanticsKindName(*kind) << ", "
                << (serve_threads == 0 ? size_t{1} : serve_threads)
                << " reader thread(s), cache "
                << (serve_cache != 0 ? "on" : "off") << ")\n";
      // Consecutive query lines form a group: all of them evaluate
      // against ONE pinned snapshot, concurrently across the reader
      // threads, and print in input order.
      std::vector<std::string> group;
      auto run_group = [&] {
        if (group.empty()) return;
        const inflog::serve::SnapshotHandle snap = session->Pin();
        std::vector<std::string> rendered(group.size());
        std::vector<inflog::Status> errors(group.size(),
                                           inflog::Status::OK());
        pool.ParallelFor(group.size(), [&](size_t q) {
          auto outcome = session->Query(group[q], snap);
          if (outcome.ok()) {
            rendered[q] = outcome->answer.rendered;
          } else {
            errors[q] = outcome.status();
          }
        });
        for (size_t q = 0; q < group.size(); ++q) {
          if (errors[q].ok()) {
            std::cout << "[epoch " << snap->epoch() << "] " << group[q]
                      << " = " << rendered[q] << "\n";
          } else {
            std::cout << "[epoch " << snap->epoch() << "] " << group[q]
                      << " : error: " << errors[q].ToString() << "\n";
          }
        }
        group.clear();
      };
      std::string line;
      while (std::getline(std::cin, line)) {
        const size_t first = line.find_first_not_of(" \t");
        if (first == std::string::npos) continue;
        const size_t last = line.find_last_not_of(" \t");
        const std::string trimmed = line.substr(first, last - first + 1);
        if (trimmed[0] == '#') continue;
        if (trimmed[0] == '?') {
          group.push_back(trimmed);
          continue;
        }
        run_group();  // updates and commands order against queries
        if (trimmed == ".epoch") {
          std::cout << "epoch " << session->epoch() << "\n";
          continue;
        }
        if (trimmed == ".stats") {
          print_serve_stats(session->stats());
          continue;
        }
        if (trimmed == ".flush") {
          auto flushed = session->Flush();
          if (!flushed.ok()) return Fail(flushed.status());
          if (flushed->has_value()) print_update(**flushed);
          continue;
        }
        auto batch = inflog::ParseUpdateLine(trimmed, engine.symbols().get());
        if (!batch.ok()) {
          std::cout << "error: " << batch.status().ToString() << "\n";
          continue;
        }
        if (batch->empty()) continue;
        auto flushed = session->Enqueue(*batch);
        // A failed ApplyUpdate leaves the maintained state inconsistent;
        // stop serving instead of answering from it.
        if (!flushed.ok()) return Fail(flushed.status());
        if (flushed->has_value()) print_update(**flushed);
      }
      run_group();
      auto tail = session->Flush();
      if (!tail.ok()) return Fail(tail.status());
      if (tail->has_value()) print_update(**tail);
      if (print_stats) print_serve_stats(session->stats());
      return 0;
    }
    if (!apply_updates.empty()) {
      options.verify_incremental = verify_incremental;
      // Output predicates would let dead-rule elimination drop rules the
      // maintainer needs intact; the session maintains every IDB.
      options.output_predicates.clear();
      // Updates route through the serving layer (cache off — nothing
      // queries it here) so --compact-threshold and --update-batch apply
      // to file-driven streams too; with the defaults the output is
      // line-identical to the pre-serving incremental loop.
      options.serving.cache = false;
      options.serving.compact_threshold = compact_threshold;
      options.serving.update_batch = update_batch == 0 ? 1 : update_batch;
      if (auto s = engine.BeginServing(*kind, options); !s.ok()) {
        return Fail(s);
      }
      auto serving = engine.serving();
      if (!serving.ok()) return Fail(serving.status());
      inflog::serve::ServingSession* session = *serving;
      std::ifstream updates(apply_updates);
      if (!updates) {
        return Fail(inflog::Status::NotFound("cannot open " + apply_updates));
      }
      std::string line;
      size_t line_no = 0;
      while (std::getline(updates, line)) {
        ++line_no;
        auto batch = inflog::ParseUpdateLine(line, engine.symbols().get());
        if (!batch.ok()) {
          std::cerr << "error: " << apply_updates << ":" << line_no << ": "
                    << batch.status().ToString() << "\n";
          return 1;
        }
        if (batch->empty()) continue;  // blank / comment line
        auto flushed = session->Enqueue(*batch);
        if (!flushed.ok()) {
          std::cerr << "error: " << apply_updates << ":" << line_no << ": "
                    << flushed.status().ToString() << "\n";
          return 1;
        }
        if (flushed->has_value()) print_update(**flushed);
      }
      auto tail = session->Flush();
      if (!tail.ok()) return Fail(tail.status());
      if (tail->has_value()) print_update(**tail);
      auto state = engine.IncrementalState();
      if (!state.ok()) return Fail(state.status());
      std::cout << "maintained state after " << update_no << " update(s):\n";
      PrintState(engine, **state);
      if (print_stats) {
        auto stats = engine.IncrementalStats();
        if (!stats.ok()) return Fail(stats.status());
        const inflog::EvalStats& s = **stats;
        std::cout << "stats:\n"
                  << "  incremental_updates    " << s.incremental_updates
                  << "\n"
                  << "  oracle_runs            " << s.incremental_oracle_runs
                  << "\n"
                  << "  edb_inserted           " << s.incremental_edb_inserted
                  << "\n"
                  << "  edb_deleted            " << s.incremental_edb_deleted
                  << "\n"
                  << "  idb_inserted           " << s.incremental_idb_inserted
                  << "\n"
                  << "  idb_deleted            " << s.incremental_idb_deleted
                  << "\n"
                  << "  del_candidates         "
                  << s.incremental_del_candidates << "\n"
                  << "  rederived              " << s.incremental_rederived
                  << "\n"
                  << "  recounted              " << s.incremental_recounted
                  << "\n"
                  << "  counting_units         "
                  << s.incremental_counting_units << "\n"
                  << "  dred_units             " << s.incremental_dred_units
                  << "\n"
                  << "  derivations            " << s.derivations << "\n"
                  << "  rows_matched           " << s.rows_matched << "\n"
                  << "  index_probes           " << s.index_lookups << "\n";
        print_serve_stats(session->stats());
      }
      return 0;
    }
    auto outcome = engine.Evaluate(*kind, options);
    if (!outcome.ok()) return Fail(outcome.status());
    if (const auto* r =
            std::get_if<inflog::InflationaryResult>(&outcome->detail)) {
      std::cout << "inflationary semantics (" << r->num_stages
                << " stages):\n";
      PrintState(engine, outcome->state());
    } else if (const auto* r =
                   std::get_if<inflog::StratifiedResult>(&outcome->detail)) {
      std::cout << "stratified semantics (" << r->num_strata << " strata):\n";
      PrintState(engine, outcome->state());
    } else if (const auto* r =
                   std::get_if<inflog::WellFoundedResult>(&outcome->detail)) {
      std::cout << "well-founded model ("
                << (r->total ? "total" : "three-valued") << "):\n";
      std::cout << " true atoms:\n";
      PrintState(engine, r->true_state);
      std::cout << " undefined atoms:\n";
      PrintState(engine, r->undefined_state);
    } else if (const auto* r =
                   std::get_if<inflog::StableResult>(&outcome->detail)) {
      std::cout << r->models.size() << " stable model(s) among "
                << r->supported_examined << " supported model(s):\n";
      for (size_t i = 0; i < r->models.size(); ++i) {
        std::cout << " model " << i + 1 << ":\n";
        PrintState(engine, r->models[i]);
      }
    }
    if (print_stats) {
      if (const inflog::EvalStats* s = outcome->stats()) {
        std::cout << "stats:\n"
                  << "  stages           " << s->stages << "\n"
                  << "  derivations      " << s->derivations << "\n"
                  << "  new_tuples       " << s->new_tuples << "\n"
                  << "  rows_matched     " << s->rows_matched << "\n"
                  << "  index_probes     " << s->index_lookups << "\n"
                  << "  intersections    " << s->intersections << "\n"
                  << "  enumerations     " << s->enumerations << "\n"
                  << "  parallel_tasks   " << s->parallel_tasks << "\n"
                  << "  steals           " << s->steals << "\n"
                  << "  splits           " << s->splits << "\n"
                  << "  parks            " << s->parks << "\n"
                  << "  slices           " << s->slices << "\n"
                  << "  batched_plans    " << s->batched_plans << "\n"
                  << "  auto_static      " << s->auto_static_stages << "\n"
                  << "  auto_stealing    " << s->auto_stealing_stages << "\n"
                  << "  opt_rules_eliminated " << s->opt_rules_eliminated
                  << "\n"
                  << "  opt_plans_reordered  " << s->opt_plans_reordered
                  << "\n"
                  << "  opt_subplans_shared  " << s->opt_subplans_shared
                  << "\n"
                  << "  opt_shared_prefixes  " << s->opt_shared_prefixes
                  << "\n"
                  << "  opt_shared_rows      " << s->opt_shared_rows
                  << "\n"
                  << "  opt_magic_rules_generated " << s->opt_magic_rules_generated
                  << "\n"
                  << "  opt_rules_inlined    " << s->opt_rules_inlined
                  << "\n"
                  << "  sat_conflicts        " << s->sat_conflicts << "\n"
                  << "  sat_decisions        " << s->sat_decisions << "\n"
                  << "  sat_propagations     " << s->sat_propagations << "\n"
                  << "  sat_restarts         " << s->sat_restarts << "\n"
                  << "  sat_learned          " << s->sat_learned << "\n"
                  << "  sat_deleted          " << s->sat_deleted << "\n"
                  << "  sat_pre_vars_elim    "
                  << s->sat_preprocess_vars_eliminated << "\n"
                  << "  sat_pre_clauses_rm   "
                  << s->sat_preprocess_clauses_removed << "\n";
        // Executed-slice size distribution, log2 buckets; only the
        // populated ones, so serial runs print a single empty line.
        std::cout << "  slice_hist      ";
        for (size_t b = 0; b < inflog::EvalStats::kSliceHistBuckets; ++b) {
          if (s->slice_hist[b] == 0) continue;
          const uint64_t lo = b == 0 ? 0 : (uint64_t{1} << b);
          std::cout << " [" << lo << "+]=" << s->slice_hist[b];
        }
        std::cout << "\n";
      } else {
        std::cout << "stats: n/a (the " << semantics
                  << " semantics runs the grounded pipeline, which "
                     "bypasses the relational executor)\n";
      }
    }
    return 0;
  }
  if (semantics == "fixpoints") {
    inflog::AnalyzeOptions analyze;
    analyze.solver = sat_options;
    auto analyzer = engine.MakeAnalyzer(analyze);
    if (!analyzer.ok()) return Fail(analyzer.status());
    auto fixpoints = analyzer->EnumerateFixpoints(/*limit=*/64);
    if (!fixpoints.ok()) return Fail(fixpoints.status());
    std::cout << fixpoints->size()
              << " fixpoint(s) (enumeration capped at 64):\n";
    for (size_t i = 0; i < fixpoints->size(); ++i) {
      std::cout << " fixpoint " << i + 1 << ":\n";
      PrintState(engine, (*fixpoints)[i]);
    }
    auto least = analyzer->LeastFixpoint();
    if (!least.ok()) return Fail(least.status());
    std::cout << "least fixpoint exists: "
              << (least->has_least ? "yes" : "no") << "\n";
    if (print_stats) {
      // Fixpoint analysis runs the CDCL pipeline, not the relational
      // executor: the sat_* block is the whole story.
      const inflog::sat::SolverStats& s = analyzer->sat_stats();
      std::cout << "stats:\n"
                << "  sat_conflicts        " << s.conflicts << "\n"
                << "  sat_decisions        " << s.decisions << "\n"
                << "  sat_propagations     " << s.propagations << "\n"
                << "  sat_restarts         " << s.restarts << "\n"
                << "  sat_learned          " << s.learned_clauses << "\n"
                << "  sat_deleted          " << s.deleted_clauses << "\n"
                << "  sat_pre_vars_elim    " << s.preprocess_vars_eliminated
                << "\n"
                << "  sat_pre_clauses_rm   " << s.preprocess_clauses_removed
                << "\n";
    }
    return 0;
  }
  std::cerr << "unknown semantics: " << semantics << "\n";
  return 2;
}
