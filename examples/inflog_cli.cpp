// inflog_cli: evaluate a DATALOG¬ program file against a database file
// under a chosen semantics — the downstream-user entry point.
//
// Usage:
//   inflog_cli PROGRAM.dlog DATABASE.facts [SEMANTICS]
//
// SEMANTICS is one of:
//   inflationary (default) | stratified | wellfounded | stable |
//   fixpoints | analyze
//
// Examples (data files ship in examples/data/):
//   inflog_cli data/pi1.dlog data/path6.facts fixpoints
//   inflog_cli data/distance.dlog data/shortcut.facts inflationary

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "src/core/engine.h"

namespace {

int Fail(const inflog::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

inflog::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return inflog::Status::NotFound("cannot open " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

void PrintState(const inflog::Engine& engine, const inflog::IdbState& state) {
  auto program = engine.program();
  INFLOG_CHECK(program.ok());
  for (uint32_t pred : (*program)->idb_predicates()) {
    const auto& info = (*program)->predicate(pred);
    std::cout << "  " << info.name << " = "
              << state.relations[info.idb_index].ToString(*engine.symbols())
              << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::cerr << "usage: " << argv[0]
              << " PROGRAM.dlog DATABASE.facts "
                 "[inflationary|stratified|wellfounded|stable|fixpoints|"
                 "analyze]\n";
    return 2;
  }
  const std::string semantics = argc > 3 ? argv[3] : "inflationary";

  inflog::Engine engine;
  auto program_text = ReadFile(argv[1]);
  if (!program_text.ok()) return Fail(program_text.status());
  if (auto s = engine.LoadProgramText(*program_text); !s.ok()) return Fail(s);
  auto db_text = ReadFile(argv[2]);
  if (!db_text.ok()) return Fail(db_text.status());
  if (auto s = engine.LoadDatabaseText(*db_text); !s.ok()) return Fail(s);

  if (semantics == "analyze") {
    auto description = engine.Describe();
    if (!description.ok()) return Fail(description.status());
    std::cout << *description;
    return 0;
  }
  // The four semantics all route through the engine's unified dispatch;
  // the variant `detail` carries each one's specific bookkeeping.
  if (auto kind = inflog::ParseSemanticsKind(semantics); kind.ok()) {
    auto outcome = engine.Evaluate(*kind);
    if (!outcome.ok()) return Fail(outcome.status());
    if (const auto* r =
            std::get_if<inflog::InflationaryResult>(&outcome->detail)) {
      std::cout << "inflationary semantics (" << r->num_stages
                << " stages):\n";
      PrintState(engine, outcome->state());
    } else if (const auto* r =
                   std::get_if<inflog::StratifiedResult>(&outcome->detail)) {
      std::cout << "stratified semantics (" << r->num_strata << " strata):\n";
      PrintState(engine, outcome->state());
    } else if (const auto* r =
                   std::get_if<inflog::WellFoundedResult>(&outcome->detail)) {
      std::cout << "well-founded model ("
                << (r->total ? "total" : "three-valued") << "):\n";
      std::cout << " true atoms:\n";
      PrintState(engine, r->true_state);
      std::cout << " undefined atoms:\n";
      PrintState(engine, r->undefined_state);
    } else if (const auto* r =
                   std::get_if<inflog::StableResult>(&outcome->detail)) {
      std::cout << r->models.size() << " stable model(s) among "
                << r->supported_examined << " supported model(s):\n";
      for (size_t i = 0; i < r->models.size(); ++i) {
        std::cout << " model " << i + 1 << ":\n";
        PrintState(engine, r->models[i]);
      }
    }
    return 0;
  }
  if (semantics == "fixpoints") {
    auto analyzer = engine.MakeAnalyzer();
    if (!analyzer.ok()) return Fail(analyzer.status());
    auto fixpoints = analyzer->EnumerateFixpoints(/*limit=*/64);
    if (!fixpoints.ok()) return Fail(fixpoints.status());
    std::cout << fixpoints->size()
              << " fixpoint(s) (enumeration capped at 64):\n";
    for (size_t i = 0; i < fixpoints->size(); ++i) {
      std::cout << " fixpoint " << i + 1 << ":\n";
      PrintState(engine, (*fixpoints)[i]);
    }
    auto least = analyzer->LeastFixpoint();
    if (!least.ok()) return Fail(least.status());
    std::cout << "least fixpoint exists: "
              << (least->has_least ? "yes" : "no") << "\n";
    return 0;
  }
  std::cerr << "unknown semantics: " << semantics << "\n";
  return 2;
}
