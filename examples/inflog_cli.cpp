// inflog_cli: evaluate a DATALOG¬ program file against a database file
// under a chosen semantics — the downstream-user entry point.
//
// Usage:
//   inflog_cli [--threads=N] PROGRAM.dlog DATABASE.facts [SEMANTICS]
//
// SEMANTICS is one of:
//   inflationary (default) | stratified | wellfounded | stable |
//   fixpoints | analyze
//
// --threads=N runs the relational fixpoint stages on N threads (results
// are deterministic and identical for every N). The default is the
// machine's hardware concurrency; --threads=1 is the serial baseline.
//
// Examples (data files ship in examples/data/):
//   inflog_cli data/pi1.dlog data/path6.facts fixpoints
//   inflog_cli --threads=4 data/distance.dlog data/shortcut.facts

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/engine.h"

namespace {

int Fail(const inflog::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

inflog::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return inflog::Status::NotFound("cannot open " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

void PrintState(const inflog::Engine& engine, const inflog::IdbState& state) {
  auto program = engine.program();
  INFLOG_CHECK(program.ok());
  for (uint32_t pred : (*program)->idb_predicates()) {
    const auto& info = (*program)->predicate(pred);
    std::cout << "  " << info.name << " = "
              << state.relations[info.idb_index].ToString(*engine.symbols())
              << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  // 0 = hardware concurrency (the default); 1 = the serial baseline.
  size_t num_threads = 0;
  std::vector<std::string> args;
  auto parse_threads = [&](const std::string& value) {
    constexpr long kMaxThreads = 1024;
    errno = 0;
    char* end = nullptr;
    const long n = std::strtol(value.c_str(), &end, 10);
    if (value.empty() || end != value.c_str() + value.size() || n < 0 ||
        errno == ERANGE || n > kMaxThreads) {
      std::cerr << "error: --threads expects an integer in [0, "
                << kMaxThreads << "], got '" << value << "'\n";
      return false;
    }
    num_threads = static_cast<size_t>(n);
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      if (!parse_threads(arg.substr(10))) return 2;
      continue;
    }
    if (arg == "--threads") {
      if (i + 1 >= argc) {
        std::cerr << "error: --threads requires a value\n";
        return 2;
      }
      if (!parse_threads(argv[++i])) return 2;
      continue;
    }
    args.push_back(arg);
  }
  if (args.size() < 2) {
    std::cerr << "usage: " << argv[0]
              << " [--threads=N] PROGRAM.dlog DATABASE.facts "
                 "[inflationary|stratified|wellfounded|stable|fixpoints|"
                 "analyze]\n";
    return 2;
  }
  const std::string semantics = args.size() > 2 ? args[2] : "inflationary";

  inflog::Engine engine;
  auto program_text = ReadFile(args[0]);
  if (!program_text.ok()) return Fail(program_text.status());
  if (auto s = engine.LoadProgramText(*program_text); !s.ok()) return Fail(s);
  auto db_text = ReadFile(args[1]);
  if (!db_text.ok()) return Fail(db_text.status());
  if (auto s = engine.LoadDatabaseText(*db_text); !s.ok()) return Fail(s);

  if (semantics == "analyze") {
    auto description = engine.Describe();
    if (!description.ok()) return Fail(description.status());
    std::cout << *description;
    return 0;
  }
  // The four semantics all route through the engine's unified dispatch;
  // the variant `detail` carries each one's specific bookkeeping.
  if (auto kind = inflog::ParseSemanticsKind(semantics); kind.ok()) {
    inflog::EvalOptions options;
    options.num_threads = num_threads;
    auto outcome = engine.Evaluate(*kind, options);
    if (!outcome.ok()) return Fail(outcome.status());
    if (const auto* r =
            std::get_if<inflog::InflationaryResult>(&outcome->detail)) {
      std::cout << "inflationary semantics (" << r->num_stages
                << " stages):\n";
      PrintState(engine, outcome->state());
    } else if (const auto* r =
                   std::get_if<inflog::StratifiedResult>(&outcome->detail)) {
      std::cout << "stratified semantics (" << r->num_strata << " strata):\n";
      PrintState(engine, outcome->state());
    } else if (const auto* r =
                   std::get_if<inflog::WellFoundedResult>(&outcome->detail)) {
      std::cout << "well-founded model ("
                << (r->total ? "total" : "three-valued") << "):\n";
      std::cout << " true atoms:\n";
      PrintState(engine, r->true_state);
      std::cout << " undefined atoms:\n";
      PrintState(engine, r->undefined_state);
    } else if (const auto* r =
                   std::get_if<inflog::StableResult>(&outcome->detail)) {
      std::cout << r->models.size() << " stable model(s) among "
                << r->supported_examined << " supported model(s):\n";
      for (size_t i = 0; i < r->models.size(); ++i) {
        std::cout << " model " << i + 1 << ":\n";
        PrintState(engine, r->models[i]);
      }
    }
    return 0;
  }
  if (semantics == "fixpoints") {
    auto analyzer = engine.MakeAnalyzer();
    if (!analyzer.ok()) return Fail(analyzer.status());
    auto fixpoints = analyzer->EnumerateFixpoints(/*limit=*/64);
    if (!fixpoints.ok()) return Fail(fixpoints.status());
    std::cout << fixpoints->size()
              << " fixpoint(s) (enumeration capped at 64):\n";
    for (size_t i = 0; i < fixpoints->size(); ++i) {
      std::cout << " fixpoint " << i + 1 << ":\n";
      PrintState(engine, (*fixpoints)[i]);
    }
    auto least = analyzer->LeastFixpoint();
    if (!least.ok()) return Fail(least.status());
    std::cout << "least fixpoint exists: "
              << (least->has_least ? "yes" : "no") << "\n";
    return 0;
  }
  std::cerr << "unknown semantics: " << semantics << "\n";
  return 2;
}
