// Proposition 2: the distance query
//   D(x, y, x*, y*) — "is there a path x→y no longer than every path
//   x*→y*?"
// is computable in Inflationary DATALOG (via two synchronized transitive
// closures and a carrier reading off the stages) but NOT by any DATALOG
// program, and the very same rules under the stratified semantics compute
// a different query, TC(x,y) ∧ ¬TC(x*,y*).
//
// This example runs both semantics on the same program and the same
// graph, prints where they diverge, and verifies the inflationary answer
// against a BFS oracle.

#include <iostream>

#include "src/core/engine.h"
#include "src/graphs/digraph.h"

namespace {

constexpr char kDistanceProgram[] = R"(
S1(X,Y) :- E(X,Y).
S1(X,Y) :- E(X,Z), S1(Z,Y).
S2(X,Y) :- E(X,Y).
S2(X,Y) :- E(X,Z), S2(Z,Y).
S3(X,Y,Xs,Ys) :- E(X,Y), !S2(Xs,Ys).
S3(X,Y,Xs,Ys) :- E(X,Z), S1(Z,Y), !S2(Xs,Ys).
)";

int Fail(const inflog::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return 1;
}

}  // namespace

int main() {
  // A small asymmetric graph: a path with a shortcut.
  inflog::Digraph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 3);
  g.AddEdge(3, 4);
  g.AddEdge(0, 3);  // shortcut: d(0,3) = 1, d(0,4) = 2

  inflog::Engine engine;
  if (auto s = engine.LoadProgramText(kDistanceProgram); !s.ok()) {
    return Fail(s);
  }
  inflog::GraphToDatabase(g, "E", engine.mutable_database());

  std::cout << "graph: " << g.ToString() << "\n\n";

  auto inflationary = engine.Inflationary();
  if (!inflationary.ok()) return Fail(inflationary.status());
  auto stratified = engine.Stratified();
  if (!stratified.ok()) return Fail(stratified.status());

  auto inf_s3 = engine.RelationOf(inflationary->state, "S3");
  auto str_s3 = engine.RelationOf(stratified->state, "S3");
  if (!inf_s3.ok() || !str_s3.ok()) return Fail(inf_s3.status());

  std::cout << "inflationary S3 size: " << (*inf_s3)->size()
            << "   (distance query D)\n"
            << "stratified  S3 size: " << (*str_s3)->size()
            << "   (TC(x,y) & !TC(x*,y*))\n\n";

  // Verify the inflationary S3 against BFS, and show a few divergences.
  const auto dist = inflog::BfsAllPairs(g);
  auto d = [&](size_t u, size_t v) -> int {
    if (u != v) return dist[u][v];
    int best = -1;
    for (uint32_t w : g.Successors(u)) {
      if (dist[w][u] >= 0 && (best < 0 || 1 + dist[w][u] < best)) {
        best = 1 + dist[w][u];
      }
    }
    return best;
  };
  const inflog::SymbolTable& symbols = *engine.symbols();
  size_t mismatches = 0, divergences_shown = 0;
  for (size_t x = 0; x < 5; ++x) {
    for (size_t y = 0; y < 5; ++y) {
      for (size_t xs = 0; xs < 5; ++xs) {
        for (size_t ys = 0; ys < 5; ++ys) {
          const int dxy = d(x, y), dst = d(xs, ys);
          const bool expect = dxy >= 0 && (dst < 0 || dxy <= dst);
          const inflog::Tuple t{
              symbols.Find(std::to_string(x)),
              symbols.Find(std::to_string(y)),
              symbols.Find(std::to_string(xs)),
              symbols.Find(std::to_string(ys))};
          const bool got = (*inf_s3)->Contains(t);
          if (got != expect) ++mismatches;
          const bool strat_got = (*str_s3)->Contains(t);
          if (got != strat_got && divergences_shown < 5) {
            ++divergences_shown;
            std::cout << "divergence at (x=" << x << ",y=" << y
                      << ",x*=" << xs << ",y*=" << ys << "): d(x,y)=" << dxy
                      << ", d(x*,y*)=" << dst
                      << "  inflationary=" << (got ? "in" : "out")
                      << "  stratified=" << (strat_got ? "in" : "out")
                      << "\n";
          }
        }
      }
    }
  }
  std::cout << "\nBFS-oracle mismatches for the inflationary semantics: "
            << mismatches << (mismatches == 0 ? "  (all verified)" : "!!")
            << "\n";
  std::cout << "\nThe distance query is not monotone, hence not DATALOG-"
               "expressible;\nthe stage-synchronized negation of "
               "Inflationary DATALOG captures it.\n";
  return mismatches == 0 ? 0 : 1;
}
